//! The sharded multi-core dataplane.
//!
//! A single [`Runtime`] stream tops out at one core. The paper's aggregation
//! model is mergeable *by construction* — §3.2 derives per-key fold state
//! that merges associatively when one flow's packets are observed at
//! different switches — and exactly the same algebra makes key-hash
//! sharding across cores sound: partition the record stream by group key,
//! run one private runtime (its own [`ExecPlan`](crate::Runtime) instance
//! and kvstore shard) per worker core, and merge the per-shard fold state
//! when the run drains.
//!
//! ```text
//!               ┌─ spsc ─▶ worker 0: Runtime (plan + stores, shard 0) ─┐
//!   records ──▶ │─ spsc ─▶ worker 1: Runtime (plan + stores, shard 1)  │─ drain:
//!   (router)    │   …                                                  │  merge fold
//!               └─ spsc ─▶ worker N: Runtime (plan + stores, shard N) ─┘  state → ResultSet
//! ```
//!
//! * **Routing** ([`ShardSpec`] / [`ShardRouter`]): the shard is a pure
//!   function of the program's *primary group key* — the key columns of the
//!   first base-rooted `GROUPBY` (falling back to the 5-tuple). Purity is
//!   the load-bearing invariant: one key can never land on two shards, so a
//!   per-key fold sees its packets on one core, in stream order.
//! * **Transport**: fixed-capacity SPSC queues
//!   ([`perfq_switch::spsc`]) with batched hand-off;
//!   [`perfq_switch::Network::run_sharded`] is the matching producer.
//! * **Drain** ([`ShardedRuntime::finish`]): workers join, each runtime
//!   flushes, and per-shard backing stores collapse through the fold merge
//!   machinery (`SplitStore::absorb_store` →
//!   `FoldOps::merge`) into one [`Runtime`] that collects exactly like the
//!   single-stream engine.
//!
//! # Exactness
//!
//! [`ShardSpec::is_exact`] reports statically whether sharded execution is
//! bit-identical to the single-stream engine (given an eviction-free
//! cache). It holds when every aggregation store satisfies one of:
//!
//! * **key confinement** — the store's key determines the shard key (shard
//!   columns ⊆ store key columns), so no key ever straddles shards: every
//!   fold class, including non-linear epoch folds and windowed folds with
//!   auxiliary replay state, behaves exactly as in the single stream;
//! * **order-free merge** — additive windowless folds (`COUNT`, `SUM`,
//!   guarded counters) merge exactly under any interleaving;
//! * **stateless overwrite** — zero-state folds (pure `GROUPBY` distinct),
//!   where every residency's value is trivially correct.
//!
//! Every Fig. 2 program is exact under its primary key. Programs outside
//! the exact set still run — cross-shard merges then carry the same
//! best-effort semantics the paper assigns to cross-switch merges of
//! non-linear state.
//!
//! One stream-order caveat survives even in exact configurations: bounded
//! **capture buffers**. A base selection's matched-row *total* is always
//! exact (totals sum across shards), but when matches exceed the capture
//! limit, single-stream retains the first `limit` rows in stream order
//! while the drain retains each shard's prefix, concatenated in shard
//! order — the global arrival order is gone once records fan out to
//! cores, the same way a real multi-pipeline ASIC's per-pipe mirror
//! buffers interleave. Retained rows are a per-shard-biased sample of the
//! matches; sizes and totals still agree exactly
//! (`tests/shard_equivalence.rs` pins both behaviours).

use crate::compiler::CompiledProgram;
use crate::durable::Durability;
use crate::result::{value_key, ResultSet};
use crate::runtime::Runtime;
use perfq_kvstore::{read_manifest, write_manifest};
use perfq_lang::{QueryInput, ResolvedKind, Value};
use perfq_lang::ir::FoldClass;
use perfq_switch::{spsc, QueueRecord};
use std::thread::JoinHandle;

/// Default capacity (records) of each shard's SPSC queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 8_192;
/// Default producer-side batch: records staged per shard before one
/// lock-and-push hand-off.
pub const DEFAULT_BATCH: usize = 256;

/// How records map to shards for one compiled program: the base-schema
/// columns whose values form the shard key, and the hash seed.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Base-schema columns forming the shard key.
    cols: Vec<usize>,
    /// Bitmask over the base schema covering `cols` (row materialization).
    mask: u64,
    /// Seed of the shard hash (independent of every store's placement
    /// hash, so shard choice and bucket choice decorrelate).
    seed: u64,
    /// Statically-proven bit-exactness of sharded execution (see module
    /// docs).
    exact: bool,
}

impl ShardSpec {
    /// Derive the sharding for a compiled program: the key columns of the
    /// first streaming `GROUPBY` over the base table, or the 5-tuple when
    /// no such query exists (pure selection programs — any pure routing
    /// works, captures are unioned on drain).
    #[must_use]
    pub fn from_compiled(compiled: &CompiledProgram) -> ShardSpec {
        let program = &compiled.program;
        let primary = program
            .queries
            .iter()
            .find_map(|q| match (&q.kind, &q.input, q.collect_only) {
                (ResolvedKind::GroupBy(g), QueryInput::Base, false) => Some(g.key_cols.clone()),
                _ => None,
            });
        let cols = primary.unwrap_or_else(|| {
            let schema = perfq_lang::base_schema();
            ["srcip", "dstip", "srcport", "dstport", "proto"]
                .iter()
                .map(|n| schema.index_of(n).expect("base schema has the 5-tuple"))
                .collect()
        });
        // Exactness audit: every store must confine its keys to one shard
        // or merge order-free (module docs).
        let mut exact = true;
        for (idx, q) in program.queries.iter().enumerate() {
            let (ResolvedKind::GroupBy(g), Some(plan)) = (&q.kind, &compiled.stores[idx]) else {
                continue;
            };
            let order_free = plan.ops.is_additive()
                && matches!(g.fold.class, FoldClass::Linear { window: 0 });
            let stateless_overwrite = g.fold.state.is_empty();
            // Key confinement is only provable for base-rooted stores: a
            // composed store's key columns index an upstream output row.
            let confined = matches!(q.input, QueryInput::Base)
                && cols.iter().all(|c| g.key_cols.contains(c));
            if !(order_free || stateless_overwrite || confined) {
                exact = false;
            }
        }
        let mut mask = 0u64;
        for c in &cols {
            mask |= 1u64 << c;
        }
        ShardSpec {
            cols,
            mask,
            seed: compiled.options.hash_seed ^ 0x5ca1_ab1e_0f01_d5ed,
            exact,
        }
    }

    /// The base-schema columns forming the shard key.
    #[must_use]
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// True when sharded execution is statically bit-identical to the
    /// single-stream engine (module docs; assumes an eviction-free cache,
    /// like every other exactness statement about the split store).
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// True when two specs route every record identically (same shard-key
    /// columns, same shard hash seed): shard `r` of one deployment receives
    /// exactly the records shard `r` of the other receives. This is what
    /// lets the multi-query dataplane substitute one program's drained
    /// store for another's — identical per-worker record streams imply
    /// identical per-worker store states, eviction for eviction.
    #[must_use]
    pub fn routes_like(&self, other: &ShardSpec) -> bool {
        self.cols == other.cols && self.seed == other.seed
    }

    /// Shard of a materialized base row — the same function the record
    /// router applies, exposed for oracles and property tests.
    #[must_use]
    pub fn shard_of_row(&self, row: &[Value], shards: usize) -> usize {
        let words: Vec<i64> = self.cols.iter().map(|c| value_key(&row[*c])).collect();
        perfq_kvstore::hash::shard_of_words(self.seed, &words, shards)
    }
}

/// Allocation-free record → shard mapper (owns the scratch buffers).
#[derive(Debug, Clone)]
pub struct ShardRouter {
    spec: ShardSpec,
    shards: usize,
    row: Vec<Value>,
    words: Vec<i64>,
}

impl ShardRouter {
    /// Build a router over `shards` shards.
    #[must_use]
    pub fn new(spec: ShardSpec, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardRouter {
            spec,
            shards,
            row: Vec::new(),
            words: Vec::new(),
        }
    }

    /// The routing spec.
    #[must_use]
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// The shard this record belongs to: a pure function of the record's
    /// shard-key column values (asserted by the property suite).
    pub fn route(&mut self, rec: &QueueRecord) -> usize {
        if self.shards == 1 {
            return 0;
        }
        rec.write_row_masked(&mut self.row, self.spec.mask);
        self.words.clear();
        self.words
            .extend(self.spec.cols.iter().map(|c| value_key(&self.row[*c])));
        perfq_kvstore::hash::shard_of_words(self.spec.seed, &self.words, self.shards)
    }
}

/// The multi-core streaming executor: N worker shards behind SPSC queues,
/// merged on drain. See the module docs for the architecture and exactness
/// guarantees; the drop-in usage mirrors [`Runtime`]:
///
/// ```
/// use perfq_core::{compile_query, ShardedRuntime};
/// use perfq_lang::fig2;
/// use perfq_switch::{Network, NetworkConfig};
/// use perfq_trace::{SyntheticTrace, TraceConfig};
///
/// let compiled = compile_query(
///     "SELECT COUNT GROUPBY srcip",
///     &fig2::default_params(),
///     Default::default(),
/// ).unwrap();
/// let mut sharded = ShardedRuntime::new(compiled, 2);
/// let mut net = Network::new(NetworkConfig::default());
/// net.run(
///     SyntheticTrace::new(TraceConfig::test_small(1)).take(2_000),
///     |r| sharded.process_record(&r),
/// );
/// let runtime = sharded.finish(); // join workers, merge fold state
/// let results = runtime.collect();
/// assert!(!results.tables[0].rows.is_empty());
/// ```
#[derive(Debug)]
pub struct ShardedRuntime {
    router: ShardRouter,
    /// `None` after [`ShardedRuntime::take_feeds`] hands the producer side
    /// to an external event loop.
    senders: Option<Vec<spsc::Sender<QueueRecord>>>,
    /// Producer-side staging, one buffer per shard.
    buffers: Vec<Vec<QueueRecord>>,
    batch: usize,
    /// Per-shard SPSC queue capacity, kept so [`ShardedRuntime::resume`]
    /// can rebuild identical transport after a pause.
    queue_capacity: usize,
    workers: Vec<JoinHandle<Runtime>>,
    routed: Vec<u64>,
    /// Durable-tier configuration ([`ShardedRuntime::enable_durability`]);
    /// the plane owns the single deployment manifest.
    durability: Option<Durability>,
    /// Record index of the last manifested checkpoint (stale-capture
    /// cleanup; see [`Runtime`]'s field of the same name).
    persisted_at: Option<u64>,
    /// Records covered by the recovered checkpoint
    /// ([`ShardedRuntime::recover`]); the deployment-wide record index is
    /// this base plus the records routed since.
    record_base: u64,
}

/// Spawn one worker thread: drain the queue in batches into the runtime,
/// return the runtime (un-finished) when the producer closes the channel —
/// which is what lets a paused dataplane resume exactly where it stopped.
fn spawn_worker(
    mut rt: Runtime,
    rx: spsc::Receiver<QueueRecord>,
    batch: usize,
) -> JoinHandle<Runtime> {
    std::thread::spawn(move || {
        let mut buf: Vec<QueueRecord> = Vec::with_capacity(batch);
        loop {
            buf.clear();
            if rx.recv_many(&mut buf, batch) == 0 {
                break;
            }
            rt.process_batch(&buf);
        }
        rt
    })
}

/// Join a worker thread, re-raising its panic payload on the draining
/// thread instead of masking it behind a generic "worker panicked"
/// message. Pairs with the SPSC channel's poisoning: a dying worker drops
/// its receiver, which closes the channel and unparks a blocked producer,
/// so the drain reaches this join instead of hanging.
fn join_worker(handle: JoinHandle<Runtime>) -> Runtime {
    match handle.join() {
        Ok(rt) => rt,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

impl ShardedRuntime {
    /// Spawn `shards` worker runtimes with default queue capacity and
    /// batch ([`DEFAULT_QUEUE_CAPACITY`], [`DEFAULT_BATCH`]).
    #[must_use]
    pub fn new(compiled: CompiledProgram, shards: usize) -> Self {
        Self::with_config(compiled, shards, DEFAULT_QUEUE_CAPACITY, DEFAULT_BATCH)
    }

    /// Spawn with explicit per-shard queue capacity and producer batch.
    #[must_use]
    pub fn with_config(
        compiled: CompiledProgram,
        shards: usize,
        queue_capacity: usize,
        batch: usize,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let programs = vec![compiled; shards];
        Self::with_worker_programs(programs, queue_capacity, batch)
    }

    /// Spawn one worker per element of `programs` — all compiled from the
    /// same source, but each worker may carry its own *physical* store
    /// geometries. This is how an area-plan-provisioned dataplane
    /// ([`crate::multi::shard_programs`]) sizes each shard's cache at `1/N`
    /// of the query's SRAM slice (constant total area) instead of
    /// replicating the single-stream geometry per core; routing uses the
    /// first program's shard spec.
    ///
    /// # Panics
    ///
    /// Panics on an empty program list, mismatched query shapes, or
    /// `batch`/`queue_capacity` out of range.
    #[must_use]
    pub fn with_worker_programs(
        programs: Vec<CompiledProgram>,
        queue_capacity: usize,
        batch: usize,
    ) -> Self {
        let shards = programs.len();
        assert!(shards > 0, "need at least one shard");
        assert!(batch > 0 && batch <= queue_capacity, "0 < batch ≤ capacity");
        assert!(
            programs.iter().all(|p| p.program == programs[0].program),
            "all shard workers must run the same resolved program \
             (only physical store geometries may differ)"
        );
        let spec = ShardSpec::from_compiled(&programs[0]);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for compiled in programs {
            let (tx, rx) = spsc::channel::<QueueRecord>(queue_capacity);
            workers.push(spawn_worker(Runtime::new(compiled), rx, batch));
            senders.push(tx);
        }
        ShardedRuntime {
            router: ShardRouter::new(spec, shards),
            senders: Some(senders),
            buffers: (0..shards).map(|_| Vec::with_capacity(batch)).collect(),
            batch,
            queue_capacity,
            workers,
            routed: vec![0; shards],
            durability: None,
            persisted_at: None,
            record_base: 0,
        }
    }

    /// Dynamic lifecycle: quiesce the dataplane between batches. Staged
    /// records flush to their queues, the queues close, and every worker
    /// joins, handing back its **un-finished** [`Runtime`] in shard order —
    /// caches still resident, ready for a live store migration or an alias
    /// promotion. [`ShardedRuntime::resume`] restarts ingestion from exactly
    /// this state.
    ///
    /// # Panics
    ///
    /// Panics if the producer side was handed away via
    /// [`ShardedRuntime::take_feeds`] (an external event loop owns the
    /// stream; there is no between-batches point to pause at), or if a
    /// worker died.
    pub(crate) fn pause(&mut self) -> Vec<Runtime> {
        let senders = self
            .senders
            .take()
            .expect("cannot pause after take_feeds handed the producer side away");
        for (buf, tx) in self.buffers.iter_mut().zip(&senders) {
            if !buf.is_empty() {
                // A send error means that worker died; the join below
                // re-raises its panic, which beats a disconnect message.
                let _ = tx.send_all(buf);
            }
        }
        drop(senders); // close the streams; workers drain their queues and exit
        self.workers.drain(..).map(join_worker).collect()
    }

    /// Dynamic lifecycle: restart a paused dataplane with the given worker
    /// runtimes (shard order; normally the vector [`ShardedRuntime::pause`]
    /// returned, possibly with migrated stores or promoted aliases). Fresh
    /// SPSC queues are built at the original capacity; routing is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the dataplane is not paused or the worker count changed.
    pub(crate) fn resume(&mut self, runtimes: Vec<Runtime>) {
        assert!(
            self.senders.is_none() && self.workers.is_empty(),
            "resume requires a paused dataplane"
        );
        assert_eq!(runtimes.len(), self.buffers.len(), "one runtime per shard");
        let mut senders = Vec::with_capacity(runtimes.len());
        for rt in runtimes {
            let (tx, rx) = spsc::channel::<QueueRecord>(self.queue_capacity);
            self.workers.push(spawn_worker(rt, rx, self.batch));
            senders.push(tx);
        }
        self.senders = Some(senders);
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The routing spec (shard-key columns, exactness verdict).
    #[must_use]
    pub fn spec(&self) -> &ShardSpec {
        self.router.spec()
    }

    /// Records routed to each shard so far (producer-side count; excludes
    /// records routed by an external producer after
    /// [`ShardedRuntime::take_feeds`]).
    #[must_use]
    pub fn routed(&self) -> &[u64] {
        &self.routed
    }

    /// Route one record to its shard (staged; pushed in batches).
    ///
    /// # Panics
    ///
    /// Panics if the producer side was handed away via
    /// [`ShardedRuntime::take_feeds`], or a worker died.
    pub fn process_record(&mut self, rec: &QueueRecord) {
        assert!(
            self.senders.is_some(),
            "producer side was taken by take_feeds"
        );
        let s = self.router.route(rec);
        self.routed[s] += 1;
        self.buffers[s].push(rec.clone());
        if self.buffers[s].len() >= self.batch {
            let disconnected = {
                let senders = self.senders.as_ref().expect("checked above");
                senders[s].send_all(&mut self.buffers[s]).is_err()
            };
            if disconnected {
                // The worker's receiver is gone — it died mid-run. Join it
                // so the producer re-raises the worker's own panic instead
                // of masking it behind a generic disconnect message (a
                // clean exit without a dropped sender cannot happen).
                let handle = self.workers.remove(s);
                match handle.join() {
                    Err(payload) => std::panic::resume_unwind(payload),
                    Ok(_) => unreachable!("worker exited without a closed queue"),
                }
            }
        }
    }

    /// Route a batch of records (sugar over [`ShardedRuntime::process_record`]).
    pub fn process_batch(&mut self, recs: &[QueueRecord]) {
        for rec in recs {
            self.process_record(rec);
        }
    }

    /// Poll the dataplane's current results **without stopping the world**:
    /// the sharded incremental read path. The plane quiesces between
    /// batches (`ShardedRuntime::pause`: staged records flush, queues
    /// drain, workers hand back their runtimes with caches resident), each
    /// worker's per-store frame merges across shards through the same
    /// normalization the final drain uses, and ingestion resumes. The
    /// result equals `finish()` + `collect()` on a replay of the records
    /// routed so far, and polling never perturbs the eventual drain
    /// (pinned by `tests/poll_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the producer side was handed away via
    /// [`ShardedRuntime::take_feeds`] (an external event loop owns the
    /// stream; there is no between-batches point to pause at), or if a
    /// worker died.
    #[must_use]
    pub fn poll_results(&mut self) -> ResultSet {
        let workers = self.pause();
        let refs: Vec<&Runtime> = workers.iter().collect();
        let lead = refs[0];
        let stores: Vec<Option<Vec<(&Runtime, usize)>>> = (0..lead.compiled().stores.len())
            .map(|q| {
                lead.compiled().stores[q]
                    .as_ref()
                    .map(|_| refs.iter().map(|rt| (*rt, q)).collect())
            })
            .collect();
        let results = crate::runtime::poll_collect(&refs, &stores);
        self.resume(workers);
        results
    }

    /// Hand the producer side — the router and the per-shard queue senders
    /// — to an external event loop such as
    /// [`perfq_switch::Network::run_sharded`]. The caller must drop the
    /// senders (run_sharded does, on return) before [`ShardedRuntime::finish`]
    /// can drain.
    ///
    /// # Panics
    ///
    /// Panics if records were already staged through
    /// [`ShardedRuntime::process_record`] (mixing producers would reorder
    /// the stream) or if the feeds were already taken.
    #[must_use]
    pub fn take_feeds(&mut self) -> (ShardRouter, Vec<spsc::Sender<QueueRecord>>) {
        assert!(
            self.buffers.iter().all(Vec::is_empty) && self.routed.iter().all(|n| *n == 0),
            "take_feeds before feeding any records"
        );
        let senders = self.senders.take().expect("feeds already taken");
        (self.router.clone(), senders)
    }

    /// Attach a durable spill tier to every store of every worker (off by
    /// default; see [`crate::durable`]). The plane quiesces between
    /// batches, each shard's stores get their own WAL/segment files
    /// (`s<i>_q<j>_` under the config's prefix), and ingestion resumes.
    /// One deployment manifest covers all shards.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as a poll (producer side taken, or
    /// a worker died).
    pub fn enable_durability(&mut self, d: Durability) -> std::io::Result<()> {
        let mut workers = self.pause();
        for (i, rt) in workers.iter_mut().enumerate() {
            rt.enable_durability_prefixed(&d, &format!("s{i}_"))?;
        }
        self.resume(workers);
        self.durability = Some(d);
        Ok(())
    }

    /// Durably checkpoint the whole plane at the current deployment record
    /// index: quiesce, checkpoint every shard's stores, advance the single
    /// manifest, compact, resume. The key-hash router is deterministic, so
    /// a recovered plane re-ingesting from the returned index routes every
    /// record to the same shard it originally reached.
    ///
    /// # Panics
    ///
    /// Panics unless [`ShardedRuntime::enable_durability`] was called, and
    /// under the same conditions as a poll.
    pub fn persist(&mut self) -> std::io::Result<()> {
        let d = self
            .durability
            .clone()
            .expect("persist requires enable_durability");
        let at = self.record_base + self.routed.iter().sum::<u64>();
        let mut workers = self.pause();
        for (i, rt) in workers.iter_mut().enumerate() {
            rt.persist_stores(at, &d, &format!("s{i}_"))?;
        }
        write_manifest(d.backend(), &d.manifest_name(), at)?;
        let stale = self.persisted_at.filter(|&old| old != at);
        self.persisted_at = Some(at);
        for (i, rt) in workers.iter_mut().enumerate() {
            rt.compact_stores(&d, &format!("s{i}_"), stale)?;
        }
        self.resume(workers);
        Ok(())
    }

    /// Recover a crashed sharded deployment: rebuild the plane at the same
    /// shard count, repair every shard's durable files against the
    /// deployment manifest, and return the plane with the **resume index**
    /// (see [`Runtime::recover`]). Routing is a pure function of the key,
    /// so re-ingesting the stream from the resume index reproduces each
    /// shard's exact sub-stream.
    pub fn recover(
        compiled: CompiledProgram,
        shards: usize,
        d: Durability,
    ) -> std::io::Result<(Self, u64)> {
        let mut plane = Self::new(compiled, shards);
        let resume = read_manifest(d.backend(), &d.manifest_name())?;
        let mut workers = plane.pause();
        for (i, rt) in workers.iter_mut().enumerate() {
            rt.recover_stores(&d, &format!("s{i}_"), resume)?;
        }
        plane.resume(workers);
        let at = resume.unwrap_or(0);
        plane.record_base = at;
        plane.persisted_at = resume;
        plane.durability = Some(d);
        Ok((plane, at))
    }

    /// Drain the dataplane: flush staged records, close the queues, join
    /// every worker, and merge the per-shard fold state (in shard order)
    /// into one **finished** [`Runtime`], ready for
    /// [`Runtime::collect`].
    #[must_use]
    pub fn finish(mut self) -> Runtime {
        if let Some(senders) = self.senders.take() {
            for (buf, tx) in self.buffers.iter_mut().zip(&senders) {
                if !buf.is_empty() {
                    // A dead worker surfaces at the join below instead.
                    let _ = tx.send_all(buf);
                }
            }
            drop(senders); // close the streams; workers drain and exit
        }
        let mut merged: Option<Runtime> = None;
        for handle in self.workers.drain(..) {
            let mut rt = join_worker(handle);
            rt.finish();
            match merged.as_mut() {
                None => merged = Some(rt),
                Some(m) => m.absorb_finished(rt),
            }
        }
        merged.expect("at least one shard")
    }

    /// Drain and collect in one step.
    #[must_use]
    pub fn finish_collect(self) -> ResultSet {
        self.finish().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::CompileOptions;
    use crate::compile_query;
    use perfq_lang::fig2;
    use perfq_switch::{Network, NetworkConfig};
    use perfq_trace::{SyntheticTrace, TraceConfig};

    fn compiled(src: &str) -> CompiledProgram {
        compile_query(src, &fig2::default_params(), CompileOptions::default()).unwrap()
    }

    fn records(n: usize) -> Vec<QueueRecord> {
        let mut net = Network::new(NetworkConfig::default());
        net.run_collect(SyntheticTrace::new(TraceConfig::test_small(11)).take(n))
    }

    #[test]
    fn spec_uses_primary_groupby_key() {
        let c = compiled("SELECT COUNT GROUPBY srcip, dstip");
        let spec = ShardSpec::from_compiled(&c);
        let schema = perfq_lang::base_schema();
        assert_eq!(
            spec.columns(),
            &[
                schema.index_of("srcip").unwrap(),
                schema.index_of("dstip").unwrap()
            ]
        );
        assert!(spec.is_exact());
    }

    #[test]
    fn spec_falls_back_to_five_tuple_for_selections() {
        let c = compiled("SELECT srcip FROM T WHERE tout - tin > 1ms");
        let spec = ShardSpec::from_compiled(&c);
        assert_eq!(spec.columns().len(), 5);
        assert!(spec.is_exact(), "no stores at all");
    }

    #[test]
    fn fig2_programs_are_statically_exact() {
        for q in fig2::ALL {
            let c = compile_query(q.source, &fig2::default_params(), CompileOptions::default())
                .unwrap();
            assert!(
                ShardSpec::from_compiled(&c).is_exact(),
                "{} must shard exactly",
                q.name
            );
        }
    }

    #[test]
    fn non_confining_nonlinear_program_is_flagged() {
        // First groupby keys by srcip; the second, non-linear one keys by
        // dstip — its keys straddle shards, so exactness cannot be proven.
        let src = "def nonmt ((maxseq, nm_count), tcpseq):\n    if maxseq > tcpseq:\n        nm_count = nm_count + 1\n    maxseq = max(maxseq, tcpseq)\n\nR1 = SELECT COUNT GROUPBY srcip\nR2 = SELECT dstip, nonmt GROUPBY dstip\n";
        let c = compiled(src);
        assert!(!ShardSpec::from_compiled(&c).is_exact());
    }

    #[test]
    fn router_is_pure_in_the_key() {
        let c = compiled("SELECT COUNT GROUPBY srcip, dstip");
        let mut router = ShardRouter::new(ShardSpec::from_compiled(&c), 4);
        let recs = records(2_000);
        let mut by_key = std::collections::HashMap::new();
        for r in &recs {
            let shard = router.route(r);
            let key = (r.packet.headers.ipv4.src, r.packet.headers.ipv4.dst);
            let prev = by_key.insert(key, shard);
            if let Some(p) = prev {
                assert_eq!(p, shard, "key {key:?} routed to two shards");
            }
        }
        assert!(by_key.len() > 4, "trace must exercise several keys");
    }

    #[test]
    fn sharded_counts_match_single_stream() {
        let recs = records(3_000);
        let c = compiled("SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip");
        let mut single = Runtime::new(c.clone());
        for r in &recs {
            single.process_record(r);
        }
        single.finish();
        for shards in [1usize, 2, 5] {
            let mut sh = ShardedRuntime::new(c.clone(), shards);
            sh.process_batch(&recs);
            let merged = sh.finish();
            assert_eq!(merged.records(), single.records());
            assert_eq!(merged.collect(), single.collect(), "{shards} shards");
        }
    }

    #[test]
    fn take_feeds_runs_through_network_producer() {
        let c = compiled("SELECT COUNT GROUPBY srcip");
        let packets: Vec<_> = SyntheticTrace::new(TraceConfig::test_small(11))
            .take(2_000)
            .collect();
        let mut net = Network::new(NetworkConfig::default());
        let want = {
            let mut rt = Runtime::new(c.clone());
            for r in net.run_collect(packets.clone().into_iter()) {
                rt.process_record(&r);
            }
            rt.finish();
            rt.collect()
        };
        let mut sh = ShardedRuntime::new(c, 3);
        let (mut router, senders) = sh.take_feeds();
        let routed = net.run_sharded(packets.into_iter(), |r| router.route(r), senders, 64);
        assert_eq!(routed.iter().sum::<u64>(), 2_000);
        assert_eq!(sh.finish_collect(), want);
    }
}
