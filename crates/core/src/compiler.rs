//! The query compiler: resolved programs → switch configurations.
//!
//! The paper stops short of this component ("We have not yet built such a
//! compiler", §1) and instead maps constructs to primitives by hand in
//! §3.1–3.2. This module performs that mapping mechanically:
//!
//! * every `GROUPBY` becomes one programmable key-value store, sized from
//!   the compile options, with its merge strategy chosen by the fold's
//!   derived linearity class;
//! * every fold is audited against a stateful-ALU budget (§3.3);
//! * `SELECT`/`WHERE` stages become the match-action filters/projections the
//!   runtime evaluates per record;
//! * streaming dataflow edges (query composition) are wired up.

use crate::foldops::FoldOps;
use perfq_lang::{QueryInput, ResolvedKind, ResolvedProgram};
use perfq_kvstore::{CacheGeometry, EvictionPolicy};
use perfq_switch::{AluReport, AluSpec, AluViolation};
use std::fmt;

/// Compiler options: the hardware configuration to target.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Key-value pairs per on-chip cache (per GROUPBY).
    pub cache_pairs: usize,
    /// Cache associativity; 0 selects the fully-associative geometry.
    pub ways: usize,
    /// In-bucket eviction policy.
    pub policy: EvictionPolicy,
    /// Seed for key-placement hashing.
    pub hash_seed: u64,
    /// Stateful-ALU budget folds are audited against.
    pub alu: AluSpec,
    /// Reject programs whose folds exceed the ALU budget (otherwise the
    /// violation is recorded but compilation proceeds — useful for research
    /// what-ifs).
    pub alu_strict: bool,
    /// Maximum records captured by selections over the base packet table.
    pub capture_limit: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            cache_pairs: 1 << 16,
            ways: 8,
            policy: EvictionPolicy::Lru,
            hash_seed: 0x7e7e_55aa,
            alu: AluSpec::banzai(),
            alu_strict: false,
            capture_limit: 100_000,
        }
    }
}

impl CompileOptions {
    /// The cache geometry implied by these options.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        if self.ways == 0 {
            CacheGeometry::fully_associative(self.cache_pairs)
        } else {
            CacheGeometry::set_associative(self.cache_pairs, self.ways)
        }
    }
}

/// The physical plan of one aggregation: a key-value store instance.
#[derive(Debug, Clone)]
pub struct StorePlan {
    /// Cache shape.
    pub geometry: CacheGeometry,
    /// Eviction policy.
    pub policy: EvictionPolicy,
    /// Hash seed (distinct per store).
    pub hash_seed: u64,
    /// Width of the aggregation key on the wire, in bits (the paper's §4
    /// running example: the 5-tuple is 104 bits).
    pub key_bits: u32,
    /// Width of the value, in bits.
    pub value_bits: u32,
    /// The fold's value operations (update + merge semantics).
    pub ops: FoldOps,
}

impl StorePlan {
    /// Bits per key-value pair.
    #[must_use]
    pub fn pair_bits(&self) -> u32 {
        self.key_bits + self.value_bits
    }
}

/// A compiled program: the resolved queries plus their physical plans.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The resolved program.
    pub program: ResolvedProgram,
    /// The options used.
    pub options: CompileOptions,
    /// Per-query store plan (`Some` for GROUPBYs).
    pub stores: Vec<Option<StorePlan>>,
    /// Per-query ALU audit (`Some` for GROUPBYs).
    pub alu: Vec<Option<Result<AluReport, AluViolation>>>,
    /// Streaming dataflow edges: `children[i]` lists queries consuming
    /// query i's output stream.
    pub children: Vec<Vec<usize>>,
    /// Queries whose aggregation store is **provided externally**: the
    /// multi-query sharing pass marks a query here when an identical store
    /// already exists in another installed program (see "Cross-query
    /// sharing" in the crate docs). A [`crate::Runtime`] built from this
    /// program removes the marked queries from its streaming pass; only the
    /// multi-query drivers ([`crate::MultiRuntime`] / [`crate::MultiSharded`])
    /// substitute the owning store back at finish time, so a *standalone*
    /// runtime over a program with non-empty `deduped_queries` would collect
    /// empty tables for them. Compilation always leaves this empty.
    pub deduped_queries: Vec<usize>,
}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A fold exceeds the ALU budget under `alu_strict`.
    AluBudget {
        /// Offending query name.
        query: String,
        /// The violation.
        violation: AluViolation,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::AluBudget { query, violation } => {
                write!(f, "query `{query}` does not fit the stateful ALU: {violation}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile a resolved program against a hardware configuration.
pub fn compile_program(
    program: ResolvedProgram,
    options: CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let n = program.queries.len();
    let params = program.param_values();
    // The §3.3/§4 width arithmetic lives with the language resolver: the
    // front end reports every aggregation's key/state bit widths, and the
    // physical planner (and the SRAM area planner downstream) consume them.
    let widths = program.store_widths();
    let mut stores = Vec::with_capacity(n);
    let mut alu = Vec::with_capacity(n);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];

    for (idx, q) in program.queries.iter().enumerate() {
        if let QueryInput::Table(src) = q.input {
            if !q.collect_only {
                children[src].push(idx);
            }
        }
        match &q.kind {
            ResolvedKind::GroupBy(g) => {
                let report = options.alu.check(&g.fold);
                if options.alu_strict {
                    if let Err(violation) = report {
                        return Err(CompileError::AluBudget {
                            query: q.name.clone(),
                            violation,
                        });
                    }
                }
                let width = widths[idx].expect("groupby reports a store width");
                stores.push(Some(StorePlan {
                    geometry: options.geometry(),
                    policy: options.policy,
                    hash_seed: options.hash_seed ^ (idx as u64).wrapping_mul(0x9e37_79b9),
                    key_bits: width.key_bits,
                    value_bits: width.value_bits,
                    ops: FoldOps::new(g.fold.clone(), params.clone()),
                }));
                alu.push(Some(report));
            }
            ResolvedKind::Project(_) => {
                stores.push(None);
                alu.push(None);
            }
        }
    }
    Ok(CompiledProgram {
        program,
        options,
        stores,
        alu,
        children,
        deduped_queries: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfq_lang::{compile as lang_compile, fig2};

    fn compiled(src: &str) -> CompiledProgram {
        let prog = lang_compile(src, &fig2::default_params()).unwrap();
        compile_program(prog, CompileOptions::default()).unwrap()
    }

    #[test]
    fn five_tuple_key_is_104_bits() {
        let c = compiled("SELECT COUNT GROUPBY 5tuple");
        let plan = c.stores[0].as_ref().unwrap();
        assert_eq!(plan.key_bits, 104, "paper §4: 5-tuple key = 104 bits");
        assert!(plan.value_bits >= 24);
    }

    #[test]
    fn per_query_stores_and_seeds_differ() {
        let c = compiled("R1 = SELECT COUNT GROUPBY srcip\nR2 = SELECT COUNT GROUPBY dstip\n");
        let s1 = c.stores[0].as_ref().unwrap();
        let s2 = c.stores[1].as_ref().unwrap();
        assert_ne!(s1.hash_seed, s2.hash_seed);
    }

    #[test]
    fn projections_have_no_store() {
        let c = compiled("SELECT srcip FROM T WHERE tout - tin > 1ms");
        assert!(c.stores[0].is_none());
        assert!(c.alu[0].is_none());
    }

    #[test]
    fn composition_wires_children() {
        let c = compiled(
            "R1 = SELECT pkt_uniq, SUM(tout-tin) GROUPBY pkt_uniq\nR2 = SELECT 5tuple FROM R1 GROUPBY 5tuple WHERE SUM(tout-tin) > L\n",
        );
        assert_eq!(c.children[0], vec![1]);
        assert!(c.children[1].is_empty());
    }

    #[test]
    fn joins_are_not_streaming_children() {
        let c = compiled(
            "R1 = SELECT COUNT GROUPBY 5tuple\nR2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity\nR3 = SELECT R2.COUNT/R1.COUNT FROM R1 JOIN R2 ON 5tuple\n",
        );
        assert!(c.children[0].is_empty());
        assert!(c.children[1].is_empty());
    }

    #[test]
    fn alu_reports_recorded_for_all_fig2_queries() {
        for q in fig2::ALL {
            let prog = fig2::compile(q).unwrap();
            let c = compile_program(prog, CompileOptions::default()).unwrap();
            for (store, report) in c.stores.iter().zip(&c.alu) {
                if store.is_some() {
                    assert!(report.as_ref().unwrap().is_ok(), "{}", q.name);
                }
            }
        }
    }

    #[test]
    fn strict_mode_rejects_oversized_folds() {
        let prog = lang_compile(
            "SELECT MAX(qsize), MIN(tin), SUM(pkt_len), COUNT GROUPBY 5tuple",
            &fig2::default_params(),
        )
        .unwrap();
        let opts = CompileOptions {
            alu: AluSpec {
                max_state_vars: 2,
                ..AluSpec::banzai()
            },
            alu_strict: true,
            ..Default::default()
        };
        let err = compile_program(prog, opts).unwrap_err();
        assert!(matches!(err, CompileError::AluBudget { .. }));
        assert!(err.to_string().contains("stateful ALU"));
    }

    #[test]
    fn geometry_from_options() {
        let opts = CompileOptions {
            cache_pairs: 1024,
            ways: 0,
            ..Default::default()
        };
        assert_eq!(opts.geometry(), CacheGeometry::fully_associative(1024));
        let opts8 = CompileOptions {
            cache_pairs: 1024,
            ways: 8,
            ..Default::default()
        };
        assert_eq!(opts8.geometry().capacity(), 1024);
        assert_eq!(opts8.geometry().ways, 8);
    }
}
