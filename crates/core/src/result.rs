//! Query results as collected from the backing stores.
//!
//! §3.2: "monitoring applications can pull results from the backing store" —
//! a [`ResultSet`] is one such pull: every query's final table, with per-key
//! validity for non-linear aggregations (the paper's invalid-key marking).

use perfq_lang::{Schema, Value};
use std::collections::HashMap;
use std::fmt;

/// One result row.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Column values, aligned with the table's schema.
    pub values: Vec<Value>,
    /// False when the key was evicted more than once under a non-linear
    /// fold — no single correct value exists (§3.2); `values` then holds the
    /// latest epoch, which is correct over its own interval.
    pub valid: bool,
}

/// One query's final table.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    /// Query name (`R1`, `__q0`, …).
    pub name: String,
    /// Output schema.
    pub schema: Schema,
    /// Rows (one per key for aggregations; matched records for selections).
    pub rows: Vec<ResultRow>,
    /// For selections over the packet table: total matches, including rows
    /// beyond the capture limit.
    pub total_matched: u64,
}

impl ResultTable {
    /// Fraction of valid rows — the paper's Fig. 6 accuracy metric.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.rows.is_empty() {
            1.0
        } else {
            self.rows.iter().filter(|r| r.valid).count() as f64 / self.rows.len() as f64
        }
    }

    /// Sort rows canonically (for deterministic output and comparisons).
    pub fn sort(&mut self) {
        self.rows
            .sort_by(|a, b| cmp_values(&a.values, &b.values));
    }

    /// Index rows by the values of `key_cols` (integer-keyed tables).
    #[must_use]
    pub fn key_map(&self, key_cols: &[usize]) -> HashMap<Vec<i64>, &ResultRow> {
        self.rows
            .iter()
            .map(|r| {
                (
                    key_cols.iter().map(|c| value_key(&r.values[*c])).collect(),
                    r,
                )
            })
            .collect()
    }

    /// Indices of the named columns.
    pub fn col_indices(&self, names: &[&str]) -> Option<Vec<usize>> {
        names.iter().map(|n| self.schema.index_of(n)).collect()
    }
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== {} ({} rows{}) ==",
            self.name,
            self.rows.len(),
            if self.total_matched > self.rows.len() as u64 {
                format!(", {} matched", self.total_matched)
            } else {
                String::new()
            }
        )?;
        let names: Vec<&str> = self.schema.columns.iter().map(|c| c.name.as_str()).collect();
        writeln!(f, "  {}", names.join(" | "))?;
        for row in self.rows.iter().take(20) {
            let cells: Vec<String> = row.values.iter().map(Value::to_string).collect();
            writeln!(
                f,
                "  {}{}",
                cells.join(" | "),
                if row.valid { "" } else { "  [invalid]" }
            )?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "  … {} more rows", self.rows.len() - 20)?;
        }
        Ok(())
    }
}

/// Final tables of every query in a program, in definition order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// The tables.
    pub tables: Vec<ResultTable>,
}

impl ResultSet {
    /// Find a table by query name.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&ResultTable> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Sort every table canonically.
    pub fn sort(&mut self) {
        for t in &mut self.tables {
            t.sort();
        }
    }
}

/// One row emitted on the incremental read path: a row of result table
/// `table` that is new or changed as of poll epoch `epoch`.
#[derive(Debug, Clone, Copy)]
pub struct DeltaRow<'a> {
    /// The poll epoch this delta belongs to (1 on the first poll; every row
    /// of the first frame is "new").
    pub epoch: u64,
    /// Name of the result table the row belongs to.
    pub table: &'a str,
    /// The row's current values and validity.
    pub row: &'a ResultRow,
}

/// Per-epoch delta bookkeeping for a polled deployment: remembers the
/// previous frame and streams only the rows that changed.
///
/// The incremental read path ([`crate::Runtime::poll_results`] and the
/// multi-query/sharded `poll` twins) returns full [`ResultSet`] frames; a
/// reader that wants *changes* holds one cursor per polled program and
/// [`DeltaCursor::advance`]s it over each frame. Deltas emit through the
/// same `FnMut` sink idiom the rest of the dataplane streams through.
/// [`crate::Runtime::poll_delta`] bundles the two steps for the
/// single-stream case.
#[derive(Debug, Clone, Default)]
pub struct DeltaCursor {
    epoch: u64,
    last: ResultSet,
}

impl DeltaCursor {
    /// Epoch of the most recent frame (0 before the first advance).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The most recent frame, canonically sorted (empty before the first
    /// advance).
    #[must_use]
    pub fn frame(&self) -> &ResultSet {
        &self.last
    }

    /// Advance the cursor to `frame`, streaming every row that is absent
    /// from — or differs (values or validity) from its match in — the
    /// previous frame. Rows that *disappeared* are not emitted: backing
    /// results only grow or update in place, so a vanished row only happens
    /// across a reinstall, where the whole next frame re-emits anyway.
    /// Returns the new epoch number.
    pub fn advance(&mut self, mut frame: ResultSet, mut sink: impl FnMut(DeltaRow<'_>)) -> u64 {
        frame.sort();
        self.epoch += 1;
        let epoch = self.epoch;
        for (t_idx, cur) in frame.tables.iter().enumerate() {
            let prev_rows: &[ResultRow] = self
                .last
                .tables
                .get(t_idx)
                .map_or(&[], |t| t.rows.as_slice());
            // Both sides are canonically sorted: one merge-walk finds, for
            // each current row, its candidate match in the previous frame.
            // Equal-valued duplicates pair off one-to-one.
            let mut i = 0;
            for row in &cur.rows {
                while i < prev_rows.len()
                    && cmp_values(&prev_rows[i].values, &row.values) == std::cmp::Ordering::Less
                {
                    i += 1;
                }
                let unchanged = i < prev_rows.len()
                    && cmp_values(&prev_rows[i].values, &row.values) == std::cmp::Ordering::Equal
                    && prev_rows[i].valid == row.valid;
                if unchanged {
                    i += 1;
                } else {
                    sink(DeltaRow {
                        epoch,
                        table: &cur.name,
                        row,
                    });
                }
            }
        }
        self.last = frame;
        epoch
    }
}

/// A stable integer key for grouping/joining on a value. Integers map to
/// themselves; floats to their bit pattern; booleans to 0/1.
#[must_use]
pub fn value_key(v: &Value) -> i64 {
    match v {
        Value::Int(x) => *x,
        Value::Float(x) => x.to_bits() as i64,
        Value::Bool(b) => i64::from(*b),
    }
}

/// Total order over rows for canonical sorting.
#[must_use]
pub fn cmp_values(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let o = match (x, y) {
            (Value::Int(p), Value::Int(q)) => p.cmp(q),
            _ => x
                .as_f64()
                .partial_cmp(&y.as_f64())
                .unwrap_or(std::cmp::Ordering::Equal),
        };
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

/// Compare two result tables row-by-row with float tolerance, returning the
/// first discrepancy (used by oracle-vs-hardware tests and the fig2 bench).
#[must_use]
pub fn diff_tables(a: &ResultTable, b: &ResultTable, tol: f64) -> Option<String> {
    if a.rows.len() != b.rows.len() {
        return Some(format!(
            "{}: row count {} vs {}",
            a.name,
            a.rows.len(),
            b.rows.len()
        ));
    }
    let mut ra = a.rows.clone();
    let mut rb = b.rows.clone();
    ra.sort_by(|x, y| cmp_values(&x.values, &y.values));
    rb.sort_by(|x, y| cmp_values(&x.values, &y.values));
    for (i, (x, y)) in ra.iter().zip(&rb).enumerate() {
        if x.values.len() != y.values.len() {
            return Some(format!("{}: row {i} arity differs", a.name));
        }
        for (cx, cy) in x.values.iter().zip(&y.values) {
            let close = match (cx, cy) {
                (Value::Int(p), Value::Int(q)) => p == q,
                _ => {
                    let (p, q) = (cx.as_f64(), cy.as_f64());
                    (p - q).abs() <= tol * (1.0 + p.abs().max(q.abs()))
                }
            };
            if !close {
                return Some(format!(
                    "{}: row {i} differs: {:?} vs {:?}",
                    a.name, x.values, y.values
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfq_lang::ValueType;

    fn table(rows: Vec<(Vec<Value>, bool)>) -> ResultTable {
        ResultTable {
            name: "t".into(),
            schema: Schema::new(vec![
                ("k".into(), ValueType::Int),
                ("v".into(), ValueType::Int),
            ]),
            rows: rows
                .into_iter()
                .map(|(values, valid)| ResultRow { values, valid })
                .collect(),
            total_matched: 0,
        }
    }

    #[test]
    fn accuracy_counts_valid_rows() {
        let t = table(vec![
            (vec![Value::Int(1), Value::Int(10)], true),
            (vec![Value::Int(2), Value::Int(20)], false),
            (vec![Value::Int(3), Value::Int(30)], true),
            (vec![Value::Int(4), Value::Int(40)], true),
        ]);
        assert!((t.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(table(vec![]).accuracy(), 1.0);
    }

    #[test]
    fn key_map_indexes_rows() {
        let t = table(vec![
            (vec![Value::Int(1), Value::Int(10)], true),
            (vec![Value::Int(2), Value::Int(20)], true),
        ]);
        let m = t.key_map(&[0]);
        assert_eq!(m[&vec![1]].values[1], Value::Int(10));
        assert_eq!(m[&vec![2]].values[1], Value::Int(20));
    }

    #[test]
    fn sort_is_canonical() {
        let mut t = table(vec![
            (vec![Value::Int(3), Value::Int(1)], true),
            (vec![Value::Int(1), Value::Int(2)], true),
            (vec![Value::Int(2), Value::Int(3)], true),
        ]);
        t.sort();
        let keys: Vec<i64> = t.rows.iter().map(|r| r.values[0].as_i64()).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn diff_detects_mismatch_and_tolerates_float_noise() {
        let a = table(vec![(vec![Value::Int(1), Value::Int(10)], true)]);
        let b = table(vec![(vec![Value::Int(1), Value::Int(11)], true)]);
        assert!(diff_tables(&a, &b, 1e-9).is_some());
        assert!(diff_tables(&a, &a, 1e-9).is_none());

        let fa = ResultTable {
            rows: vec![ResultRow {
                values: vec![Value::Float(1.0)],
                valid: true,
            }],
            ..table(vec![])
        };
        let fb = ResultTable {
            rows: vec![ResultRow {
                values: vec![Value::Float(1.0 + 1e-13)],
                valid: true,
            }],
            ..table(vec![])
        };
        assert!(diff_tables(&fa, &fb, 1e-9).is_none());
    }

    #[test]
    fn display_marks_invalid_rows() {
        let t = table(vec![(vec![Value::Int(1), Value::Int(2)], false)]);
        assert!(t.to_string().contains("[invalid]"));
    }

    fn frame(rows: Vec<(Vec<Value>, bool)>) -> ResultSet {
        ResultSet {
            tables: vec![table(rows)],
        }
    }

    #[test]
    fn delta_cursor_emits_first_frame_whole_then_only_changes() {
        let mut cur = DeltaCursor::default();
        let mut got: Vec<(u64, Vec<Value>)> = Vec::new();
        let epoch = cur.advance(
            frame(vec![
                (vec![Value::Int(1), Value::Int(10)], true),
                (vec![Value::Int(2), Value::Int(20)], true),
            ]),
            |d| got.push((d.epoch, d.row.values.clone())),
        );
        assert_eq!(epoch, 1);
        assert_eq!(got.len(), 2, "first poll emits every row");

        got.clear();
        // Key 1 unchanged, key 2 updated, key 3 new.
        let epoch = cur.advance(
            frame(vec![
                (vec![Value::Int(1), Value::Int(10)], true),
                (vec![Value::Int(2), Value::Int(25)], true),
                (vec![Value::Int(3), Value::Int(30)], true),
            ]),
            |d| got.push((d.epoch, d.row.values.clone())),
        );
        assert_eq!(epoch, 2);
        assert_eq!(
            got,
            vec![
                (2, vec![Value::Int(2), Value::Int(25)]),
                (2, vec![Value::Int(3), Value::Int(30)]),
            ]
        );

        got.clear();
        // Identical frame → empty delta.
        let epoch = cur.advance(
            frame(vec![
                (vec![Value::Int(1), Value::Int(10)], true),
                (vec![Value::Int(2), Value::Int(25)], true),
                (vec![Value::Int(3), Value::Int(30)], true),
            ]),
            |d| got.push((d.epoch, d.row.values.clone())),
        );
        assert_eq!(epoch, 3);
        assert!(got.is_empty(), "unchanged frame emits nothing");
    }

    #[test]
    fn delta_cursor_flags_validity_flips() {
        let mut cur = DeltaCursor::default();
        cur.advance(
            frame(vec![(vec![Value::Int(1), Value::Int(10)], true)]),
            |_| {},
        );
        let mut got = Vec::new();
        cur.advance(
            frame(vec![(vec![Value::Int(1), Value::Int(10)], false)]),
            |d| got.push(d.row.valid),
        );
        assert_eq!(got, vec![false], "a validity flip alone is a change");
    }
}
