//! Fold-backed value operations for the split key-value store.
//!
//! This is where the paper's merge theory (§3.2) becomes executable for
//! *arbitrary* compiled folds:
//!
//! * **Linear-in-state folds** (`S' = A·S + B`). The cache value carries
//!   auxiliary state: the running coefficient product `Π A` (a k×k matrix
//!   over the linear variables) accumulated since the key's (re)insertion,
//!   plus — for folds whose `A`/`B` read a `w`-packet history window — a log
//!   of the first `w` input rows and a state snapshot taken after them. The
//!   merge then computes
//!
//!   ```text
//!   S_true_after_w = replay(logged rows, from backing value)
//!   S_corrected    = S_evicted + ΠA · (S_true_after_w − S_snapshot)
//!   ```
//!
//!   which reduces to the paper's EWMA formula
//!   `s_corrected = s_new + (1−α)^N (s_backing − s_0)` when k = 1 and w = 0.
//!
//! * **Pure-window folds** — the evicted value alone is correct; overwrite.
//! * **Non-linear folds** — per-epoch values, invalid on re-eviction.
//!
//! The per-packet `A` matrix is extracted numerically: with the window
//! variables pinned at their actual values, the update restricted to the
//! linear variables is affine, so evaluating the body at the zero vector and
//! at each basis vector yields `B` and the columns of `A`. Folds whose every
//! update is *additive* in state (`A = I`, e.g. COUNT/SUM and guarded
//! counters) skip extraction entirely — `ΠA` stays the identity.

use perfq_kvstore::wal::{ByteReader, ByteWriter as _};
use perfq_kvstore::{MergeMode, Persist, ValueOps};
use perfq_lang::bytecode::{self, EvalStack, Program};
use perfq_lang::ir::{FoldIr, RExpr, RStmt, VarClass};
use perfq_lang::{FoldClass, Value};
use std::cell::RefCell;

/// Auxiliary merge state carried alongside the fold variables in the cache.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinearAux {
    /// Packets folded since (re)insertion.
    pub packets: u64,
    /// The first `window` input rows after insertion (replayed at merge).
    pub window_log: Vec<Vec<Value>>,
    /// State snapshot after the first `window` packets.
    pub snapshot: Vec<Value>,
    /// Row-major ΠA over the linear variables, accumulated after the
    /// snapshot point. Empty when the fold is additive (ΠA = I).
    pub prod: Vec<f64>,
}

/// How many state variables live inline in [`StateVec`]. Every Fig. 2 fold
/// fits (the largest uses two variables).
pub const INLINE_STATE_VARS: usize = 2;

/// The per-key state vector. Small folds (the common case) keep their
/// variables inline in the cache slot itself, so the per-packet update
/// touches no second heap line; wider folds spill to a `Vec`.
#[derive(Debug, Clone)]
pub enum StateVec {
    /// Up to [`INLINE_STATE_VARS`] variables, zero-padded past `len`.
    Inline {
        /// Number of meaningful variables.
        len: u8,
        /// The variables; `vals[len..]` is `Int(0)`.
        vals: [Value; INLINE_STATE_VARS],
    },
    /// Wider state spills to the heap.
    Heap(Vec<Value>),
}

impl StateVec {
    /// Build canonically from a slice (inline iff it fits).
    #[must_use]
    pub fn from_slice(vals: &[Value]) -> Self {
        if vals.len() <= INLINE_STATE_VARS {
            let mut inline = [Value::Int(0); INLINE_STATE_VARS];
            inline[..vals.len()].copy_from_slice(vals);
            StateVec::Inline {
                len: vals.len() as u8,
                vals: inline,
            }
        } else {
            StateVec::Heap(vals.to_vec())
        }
    }

    /// Copy out as a plain vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<Value> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[Value] {
        match self {
            StateVec::Inline { len, vals } => &vals[..usize::from(*len)],
            StateVec::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [Value] {
        match self {
            StateVec::Inline { len, vals } => &mut vals[..usize::from(*len)],
            StateVec::Heap(v) => v,
        }
    }
}

impl std::ops::Deref for StateVec {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for StateVec {
    fn deref_mut(&mut self) -> &mut [Value] {
        self.as_mut_slice()
    }
}

impl PartialEq for StateVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A fold's state as stored in the split store.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldState {
    /// The state variables, in `FoldIr::state` order.
    pub vars: StateVec,
    /// Packets folded since (re)insertion — maintained inline (no aux box)
    /// by the `ConstAKernel` fast path, which needs only this exponent at
    /// merge time. Folds that carry a [`LinearAux`] track packets there
    /// instead and leave this 0.
    pub packets: u64,
    /// Merge bookkeeping (only for linear folds outside the fast path).
    pub aux: Option<Box<LinearAux>>,
}

/// The compiled one-variable constant-A fast kernel.
///
/// A windowless fold over a single state variable whose update is one
/// assignment, affine in the state with a *constant* coefficient —
/// EWMA's `s' = (1−α)·s + α·(tout−tin)` is the canonical case, and plain
/// counters/sums (`s' = s + B`) fit too — needs none of the generic
/// machinery on the observe path: no `RefCell` scratch, no numeric `A`
/// extraction, no per-key aux box. The kernel keeps the decomposed update
/// (state term, combining operator, state-free `B` tree) and evaluates it
/// directly with the same [`Value`] operator semantics the bytecode engine
/// uses — `bind_params` folds closed subtrees with exactly these ops, so
/// the kernel's results are bit-identical to the compiled program's. The
/// merge correction collapses to the scalar
/// `corrected = evicted + A^n · (standing − init)` with `n` read from the
/// inline [`FoldState::packets`] counter.
#[derive(Debug, Clone, PartialEq)]
struct ConstAKernel {
    /// Coefficient on the state term (`None` = the bare state), paired
    /// with `true` when the coefficient is the left operand — the source
    /// operand order is preserved for bit-exactness.
    coeff: Option<(Value, bool)>,
    /// How the state term combines with `B`: operator, `true` when the
    /// state term is the left operand, and the state-free `B` expression
    /// (params still symbolic; `Call`-free so evaluation allocates
    /// nothing). `None` = the update has no `B` term.
    combine: Option<(perfq_lang::ast::BinOp, bool, RExpr)>,
    /// The signed scalar `A` (coefficient value, negated for `B − A·s`).
    a: f64,
    /// The state variable's type — the post-update coercion target.
    ty: perfq_lang::ValueType,
    /// The state variable's initial value (the merge baseline).
    init: Value,
}

impl ConstAKernel {
    /// One packet: `s ← combine(A-term(s), B(input))`, coerced to the
    /// variable's type — operand order and ops exactly as the generic
    /// engine would apply them.
    #[inline]
    fn update(&self, vars: &mut StateVec, input: &[Value], params: &[Value]) {
        use perfq_lang::ast::BinOp;
        let s = vars[0];
        let s_term = match &self.coeff {
            Some((c, true)) => Value::binop(BinOp::Mul, *c, s),
            Some((c, false)) => Value::binop(BinOp::Mul, s, *c),
            None => Ok(s),
        }
        .expect("type-checked fold body cannot fail at runtime");
        let out = match &self.combine {
            Some((op, state_first, b)) => {
                let bv = perfq_lang::ir::eval(b, &[], input, params)
                    .expect("state-free B term evaluates");
                if *state_first {
                    Value::binop(*op, s_term, bv)
                } else {
                    Value::binop(*op, bv, s_term)
                }
                .expect("type-checked fold body cannot fail at runtime")
            }
            None => s_term,
        };
        vars[0] = out.coerce(self.ty);
    }
}

/// Structurally decompose a fold into a [`ConstAKernel`], or `None` when it
/// doesn't fit: one linear state variable, no window, a single assignment
/// of the shape `[c ·] s [± B]` (either operand order) with a constant
/// coefficient and a state-free, `Call`-free `B`.
fn const_a_kernel(fold: &FoldIr, params: &[Value]) -> Option<ConstAKernel> {
    use perfq_lang::ast::BinOp;
    if fold.state.len() != 1 || fold.class != (FoldClass::Linear { window: 0 }) {
        return None;
    }
    let [RStmt::Assign(0, e)] = fold.body.as_slice() else {
        return None;
    };
    fn reads_state(e: &RExpr) -> bool {
        let mut found = false;
        e.visit(&mut |n| {
            if matches!(n, RExpr::State(_)) {
                found = true;
            }
        });
        found
    }
    /// State-free, input-allowed, `Call`-free (a builtin call would
    /// allocate its argument vector per packet).
    fn plain_b(e: &RExpr) -> bool {
        let mut ok = true;
        e.visit(&mut |n| {
            if matches!(n, RExpr::State(_) | RExpr::Call(..)) {
                ok = false;
            }
        });
        ok
    }
    /// Only literals and parameters (no inputs or state).
    fn is_const(e: &RExpr) -> bool {
        let mut ok = true;
        e.visit(&mut |n| {
            if matches!(n, RExpr::Input(_) | RExpr::State(_) | RExpr::Call(..)) {
                ok = false;
            }
        });
        ok
    }
    let (state_term, combine_shape) = match e {
        RExpr::Binary(op, l, r) if matches!(op, BinOp::Add | BinOp::Sub) => {
            match (reads_state(l), reads_state(r)) {
                (true, false) if plain_b(r) => (l.as_ref(), Some((*op, true, (**r).clone()))),
                (false, true) if plain_b(l) => (r.as_ref(), Some((*op, false, (**l).clone()))),
                _ => return None,
            }
        }
        other if reads_state(other) => (other, None),
        _ => return None,
    };
    let coeff = match state_term {
        RExpr::State(0) => None,
        RExpr::Binary(BinOp::Mul, c, s)
            if is_const(c) && matches!(s.as_ref(), RExpr::State(0)) =>
        {
            Some((perfq_lang::ir::eval(c, &[], &[], params).ok()?, true))
        }
        RExpr::Binary(BinOp::Mul, s, c)
            if matches!(s.as_ref(), RExpr::State(0)) && is_const(c) =>
        {
            Some((perfq_lang::ir::eval(c, &[], &[], params).ok()?, false))
        }
        _ => return None,
    };
    let mut a = coeff.map_or(1.0, |(c, _)| c.as_f64());
    if matches!(combine_shape, Some((BinOp::Sub, false, _))) {
        // `B − A·s`: the state coefficient enters negated.
        a = -a;
    }
    Some(ConstAKernel {
        coeff,
        combine: combine_shape,
        a,
        ty: fold.state[0].ty,
        init: fold.init_state()[0],
    })
}

/// Reusable per-update working memory. One instance per store (not per
/// key): the dataplane update path allocates nothing after warm-up.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Bytecode value stack.
    stack: EvalStack,
    /// `extract_a` state with linear vars zeroed.
    base: Vec<Value>,
    /// `extract_a` zero-probe result (the `B` vector).
    f0: Vec<Value>,
    /// `extract_a` basis-probe buffer.
    probe: Vec<Value>,
    /// Extracted per-packet `A` matrix (row-major k×k).
    a: Vec<f64>,
    /// Matrix-multiply temporary.
    mat_tmp: Vec<f64>,
    /// Merge-time `replayed − snapshot` vector over the linear variables —
    /// pooled so the sharded drain's merge storm allocates nothing warm.
    delta: Vec<f64>,
    /// The constant `A` matrix, extracted lazily on the first post-window
    /// update (only used when `FoldOps::constant_a`). Empty = not yet
    /// extracted.
    const_a: Vec<f64>,
}

/// [`ValueOps`] implementation driving a compiled [`FoldIr`].
///
/// The fold body is compiled once into flat [`bytecode`] and executed with a
/// reusable stack; the tree-walking interpreter is used only by the oracle.
#[derive(Debug, Clone)]
pub struct FoldOps {
    fold: FoldIr,
    /// The fold body compiled to postfix bytecode.
    program: Program,
    params: Vec<Value>,
    /// Indices of `Linear`-classified variables (the mergeable vector).
    linear_vars: Vec<usize>,
    /// Window depth to log + replay.
    window: u32,
    /// True when every linear variable's update has `A = I` (pure
    /// accumulation), so `ΠA` tracking is unnecessary.
    additive: bool,
    /// True when the `A` matrix provably cannot vary across packets (no
    /// branches; every linear-state coefficient is a compile-time
    /// constant). The per-packet ΠA product then collapses to `A^n`
    /// computed once at merge time — the dataplane skips extraction and
    /// matrix multiplication entirely.
    constant_a: bool,
    /// The one-variable constant-A fast kernel, when the fold fits it.
    /// Takes precedence over the generic aux/scratch machinery on every
    /// path (init/update/merge) — see [`ConstAKernel`].
    fast: Option<ConstAKernel>,
    /// The initial state vector, materialised once: the per-miss `init`
    /// and the per-eviction additive merge correction both read it without
    /// rebuilding it, keeping the cache-miss and freshness-sweep paths
    /// allocation-free for inline-width folds.
    init: StateVec,
    mode: MergeMode,
    /// Single-threaded working memory (the switch pipeline is one stream).
    scratch: RefCell<Scratch>,
}

impl FoldOps {
    /// Build ops for a compiled fold with bound parameter values.
    #[must_use]
    pub fn new(fold: FoldIr, params: Vec<Value>) -> Self {
        let (mode, window) = match fold.class {
            FoldClass::Linear { window } => (MergeMode::Merge, window),
            FoldClass::PureWindow { .. } => (MergeMode::Overwrite, 0),
            FoldClass::NonLinear => (MergeMode::Epochs, 0),
        };
        let linear_vars = fold.linear_vars();
        let additive = mode == MergeMode::Merge
            && linear_vars
                .iter()
                .all(|v| is_additive_in(&fold.body, *v, &linear_vars));
        let constant_a = !additive
            && mode == MergeMode::Merge
            && has_constant_a(&fold.body, &linear_vars);
        let program = bytecode::compile_stmts_bound(&fold.body, &params);
        let fast = const_a_kernel(&fold, &params);
        let init = StateVec::from_slice(&fold.init_state());
        FoldOps {
            fold,
            init,
            program,
            params,
            linear_vars,
            window,
            additive,
            constant_a,
            fast,
            mode,
            scratch: RefCell::new(Scratch::default()),
        }
    }

    /// The underlying fold.
    #[must_use]
    pub fn fold(&self) -> &FoldIr {
        &self.fold
    }

    /// Bound parameter values.
    #[must_use]
    pub fn params(&self) -> &[Value] {
        &self.params
    }

    /// Whether the additive fast path (ΠA = I) is active.
    #[must_use]
    pub fn is_additive(&self) -> bool {
        self.additive
    }

    /// Whether a run of consecutive same-key packets may be **pre-reduced**
    /// into a single store write: the vectorized sweep sums the per-packet
    /// contributions ([`Self::run_contribution`]) and applies the total once
    /// ([`Self::apply_run`]).
    ///
    /// The gate demands exactness, not plausibility: the fold must fit the
    /// compiled constant-A kernel with a bare state term (`A = 1` — any coefficient
    /// would make per-packet order observable), an **integer** state
    /// variable (wrapping `i64` arithmetic is associative; float addition
    /// is not), and a combine of `s + B`, `B + s`, or `s − B` (for which
    /// `((s ∘ b₁) ∘ b₂) ≡ s ∘ (b₁ + b₂)` holds bit-exactly in modular
    /// arithmetic). Everything else — EWMA, windows, epoch folds —
    /// falls back to per-row folding on the held slot handle.
    #[must_use]
    pub fn run_prereducible(&self) -> bool {
        use perfq_lang::ast::BinOp;
        self.fast.as_ref().is_some_and(|k| {
            k.coeff.is_none()
                && k.ty == perfq_lang::ValueType::Int
                && matches!(
                    k.combine,
                    Some((BinOp::Add, _, _)) | Some((BinOp::Sub, true, _))
                )
        })
    }

    /// One packet's contribution to a pre-reduced run: the kernel's `B`
    /// term evaluated on this input row. Returns `None` when the value is
    /// not an [`Value::Int`] (a float or bool `B` coerces per-row inside
    /// the kernel, which pre-reduction cannot reproduce) — the caller must
    /// flush the run so far and fold that row individually.
    ///
    /// Only meaningful when [`Self::run_prereducible`] holds.
    #[must_use]
    pub fn run_contribution(&self, input: &[Value]) -> Option<i64> {
        debug_assert!(self.run_prereducible());
        let k = self.fast.as_ref()?;
        let (_, _, b) = k.combine.as_ref()?;
        match perfq_lang::ir::eval(b, &[], input, &self.params) {
            Ok(Value::Int(v)) => Some(v),
            _ => None,
        }
    }

    /// Apply a pre-reduced run of `n` packets whose `B` contributions sum
    /// (wrapping) to `acc`, exactly as `n` sequential kernel updates would:
    /// `s ← s ∓ acc` in wrapping `i64`, `packets += n`.
    ///
    /// Only legal when [`Self::run_prereducible`] holds and every row's
    /// [`Self::run_contribution`] returned `Some`.
    pub fn apply_run(&self, value: &mut FoldState, acc: i64, n: u64) {
        use perfq_lang::ast::BinOp;
        debug_assert!(n > 0, "a pre-reduced run covers at least one packet");
        debug_assert!(self.run_prereducible());
        let k = self.fast.as_ref().expect("gated by run_prereducible");
        let (op, _, _) = k.combine.as_ref().expect("gated by run_prereducible");
        value.packets += n;
        let Value::Int(s) = value.vars[0] else {
            unreachable!("an Int-typed kernel state variable holds an Int")
        };
        value.vars[0] = Value::Int(match op {
            BinOp::Add => s.wrapping_add(acc),
            BinOp::Sub => s.wrapping_sub(acc),
            _ => unreachable!("run_prereducible admits only Add/Sub"),
        });
    }

    /// True when two ops drive **byte-identical** store state on identical
    /// input streams: same compiled (param-folded) update bytecode, same
    /// state layout (variable types and initial values — names are
    /// cosmetic), same per-variable linearity classes, and therefore the
    /// same merge machinery. This is the fold half of the multi-query
    /// store-dedup legality rule; the physical half (geometry, eviction
    /// policy, hash seed) is compared on the [`crate::StorePlan`]s.
    #[must_use]
    pub fn dataplane_identical(&self, other: &FoldOps) -> bool {
        self.program == other.program
            && self.fast == other.fast
            && self.mode == other.mode
            && self.window == other.window
            && self.additive == other.additive
            && self.constant_a == other.constant_a
            && self.linear_vars == other.linear_vars
            && self.fold.class == other.fold.class
            && self.fold.var_classes == other.fold.var_classes
            && self.fold.state.len() == other.fold.state.len()
            && self
                .fold
                .state
                .iter()
                .zip(&other.fold.state)
                .all(|(a, b)| a.ty == b.ty && a.init == b.init)
    }

    fn k(&self) -> usize {
        self.linear_vars.len()
    }

    /// Run the fold body once (panics only on internal IR inconsistencies,
    /// which resolution has excluded).
    fn exec(&self, state: &mut [Value], input: &[Value]) {
        let mut scratch = self.scratch.borrow_mut();
        self.exec_with(&mut scratch.stack, state, input);
    }

    /// Run the fold body with an explicitly borrowed stack (lets callers
    /// holding the scratch split its fields without re-borrowing the cell).
    fn exec_with(&self, stack: &mut EvalStack, state: &mut [Value], input: &[Value]) {
        self.program
            .exec(stack, state, input, &self.params)
            .expect("type-checked fold body cannot fail at runtime");
        // Keep state types stable: a branch may assign an Int expression to a
        // Float variable; normalize so downstream linear algebra sees floats.
        for (i, var) in self.fold.state.iter().enumerate() {
            state[i] = state[i].coerce(var.ty);
        }
    }

    /// Extract this packet's `A` matrix over the linear variables, with
    /// window variables pinned to their current values.
    ///
    /// Numerical care: a unit basis probe would lose `A` entirely whenever
    /// `B` is large (e.g. EWMA over a dropped packet's latency, where
    /// `B = α·(∞ − tin) ≈ 10¹⁸` swamps `A·1` below f64 resolution). We
    /// therefore probe with a basis scaled to dominate `|B|` and divide the
    /// difference back down: the error in each coefficient is then
    /// `O(ε·(1 + |A|))` regardless of `B`. Integer-typed variables use exact
    /// integer probes (their coefficients are integers).
    fn extract_a_into(&self, state: &[Value], input: &[Value], s: &mut Scratch) {
        let k = self.k();
        s.base.clear();
        s.base.extend_from_slice(state);
        for &v in &self.linear_vars {
            s.base[v] = Value::zero(self.fold.state[v].ty);
        }
        s.f0.clear();
        s.f0.extend_from_slice(&s.base);
        {
            let Scratch { stack, f0, .. } = s;
            self.exec_with(stack, f0, input);
        }
        // Scale the float probe past the largest |B| component.
        let b_max = self
            .linear_vars
            .iter()
            .map(|&v| s.f0[v].as_f64().abs())
            .fold(1.0_f64, f64::max);
        let float_m = (b_max * 1048576.0).max(1048576.0); // |B|·2^20
        const INT_M: i64 = 1 << 20;
        s.a.clear();
        s.a.resize(k * k, 0.0);
        for (col, &vj) in self.linear_vars.iter().enumerate() {
            s.probe.clear();
            s.probe.extend_from_slice(&s.base);
            let m = match self.fold.state[vj].ty {
                perfq_lang::ValueType::Float => {
                    s.probe[vj] = Value::Float(float_m);
                    float_m
                }
                _ => {
                    s.probe[vj] = Value::Int(INT_M);
                    INT_M as f64
                }
            };
            {
                let Scratch { stack, probe, .. } = s;
                self.exec_with(stack, probe, input);
            }
            for (row, &vi) in self.linear_vars.iter().enumerate() {
                s.a[row * k + col] = (s.probe[vi].as_f64() - s.f0[vi].as_f64()) / m;
            }
        }
    }

    /// Extract into a fresh vector (test/report convenience; the dataplane
    /// uses [`FoldOps::extract_a_into`] with pooled buffers).
    #[cfg(test)]
    fn extract_a(&self, state: &[Value], input: &[Value]) -> Vec<f64> {
        let mut s = self.scratch.borrow_mut();
        self.extract_a_into(state, input, &mut s);
        s.a.clone()
    }
}

/// `prod ← a · prod` (row-major k×k), using `tmp` as working memory.
fn matmul_into(prod: &mut [f64], a: &[f64], k: usize, tmp: &mut Vec<f64>) {
    tmp.clear();
    tmp.resize(k * k, 0.0);
    for i in 0..k {
        for j in 0..k {
            let mut acc = 0.0;
            for t in 0..k {
                acc += a[i * k + t] * prod[t * k + j];
            }
            tmp[i * k + j] = acc;
        }
    }
    prod.copy_from_slice(tmp);
}

fn identity(k: usize) -> Vec<f64> {
    let mut m = vec![0.0; k * k];
    for i in 0..k {
        m[i * k + i] = 1.0;
    }
    m
}

/// `a^n` by binary exponentiation — the same multiplication order as
/// [`matrix_pow`] restricted to k = 1, so scalar and matrix paths round
/// identically.
fn scalar_pow(mut base: f64, mut n: u64) -> f64 {
    let mut acc = 1.0;
    while n > 0 {
        if n & 1 == 1 {
            acc *= base;
        }
        n >>= 1;
        if n > 0 {
            base *= base;
        }
    }
    acc
}

/// `a^n` by repeated squaring (powers of one matrix commute, so the
/// left-multiply convention of [`matmul_into`] is immaterial).
fn matrix_pow(a: &[f64], k: usize, mut n: u64) -> Vec<f64> {
    let mut result = identity(k);
    let mut base = a.to_vec();
    let mut tmp = Vec::new();
    while n > 0 {
        if n & 1 == 1 {
            matmul_into(&mut result, &base, k, &mut tmp);
        }
        n >>= 1;
        if n > 0 {
            let sq = base.clone();
            matmul_into(&mut base, &sq, k, &mut tmp);
        }
    }
    result
}

/// Structural proof that the per-packet `A` matrix cannot vary: the body has
/// no conditionals (a branch could select different coefficients per
/// packet), and every assignment is affine in the linear variables with
/// coefficients built only from literals and parameters — never from inputs
/// or (window) state. EWMA (`s' = (1-α)·s + α·x`) is the canonical case.
fn has_constant_a(body: &[RStmt], linear_vars: &[usize]) -> bool {
    fn reads_linear(e: &RExpr, lv: &[usize]) -> bool {
        let mut found = false;
        e.visit(&mut |n| {
            if let RExpr::State(i) = n {
                if lv.contains(i) {
                    found = true;
                }
            }
        });
        found
    }
    /// Only literals and parameters — the coefficient language.
    fn is_const_expr(e: &RExpr) -> bool {
        let mut ok = true;
        e.visit(&mut |n| {
            if matches!(n, RExpr::Input(_) | RExpr::State(_)) {
                ok = false;
            }
        });
        ok
    }
    /// Affine in the linear vars with constant coefficients.
    fn affine(e: &RExpr, lv: &[usize]) -> bool {
        if !reads_linear(e, lv) {
            // Pure `B` term: may read inputs and window state freely.
            return true;
        }
        use perfq_lang::ast::{BinOp, UnaryOp};
        match e {
            RExpr::State(i) => lv.contains(i),
            RExpr::Unary(UnaryOp::Neg, inner) => affine(inner, lv),
            RExpr::Binary(op, l, r) => match op {
                BinOp::Add | BinOp::Sub => affine(l, lv) && affine(r, lv),
                BinOp::Mul => {
                    (is_const_expr(l) && affine(r, lv)) || (is_const_expr(r) && affine(l, lv))
                }
                BinOp::Div => affine(l, lv) && is_const_expr(r),
                _ => false,
            },
            _ => false,
        }
    }
    body.iter().all(|s| match s {
        RStmt::If { .. } => false,
        RStmt::Assign(_, e) => affine(e, linear_vars),
    })
}

impl ValueOps for FoldOps {
    type Value = FoldState;
    type Input = [Value];

    fn init(&self) -> FoldState {
        // Fast-kernel folds keep their merge exponent in the inline
        // `packets` counter: no per-key aux box at all, so (re)insertion
        // under eviction churn allocates nothing.
        if self.fast.is_some() {
            return FoldState {
                vars: self.init.clone(),
                packets: 0,
                aux: None,
            };
        }
        // Additive windowless folds (COUNT, SUM, guarded counters) need no
        // merge bookkeeping at all: the correction is `standing − init`,
        // computable from the values alone. Skip the per-key aux box and the
        // per-packet aux branch entirely.
        let aux = if self.mode == MergeMode::Merge && !(self.additive && self.window == 0) {
            Some(Box::new(LinearAux {
                packets: 0,
                window_log: Vec::new(),
                snapshot: Vec::new(),
                // Additive folds keep ΠA = I implicitly; constant-A folds
                // reconstruct ΠA = A^n at merge time — neither tracks a
                // per-key matrix.
                prod: if self.additive || self.constant_a {
                    Vec::new()
                } else {
                    identity(self.k())
                },
            }))
        } else {
            None
        };
        FoldState {
            vars: self.init.clone(),
            packets: 0,
            aux,
        }
    }

    fn update(&self, value: &mut FoldState, input: &[Value]) {
        // The constant-A fast path: count the packet, apply the decomposed
        // affine update in place. No RefCell borrow, no aux-box line, no
        // bytecode dispatch — the EWMA observe path collapses to a handful
        // of `Value` ops.
        if let Some(k) = &self.fast {
            value.packets += 1;
            k.update(&mut value.vars, input, &self.params);
            return;
        }
        if let Some(aux) = value.aux.as_deref_mut() {
            if aux.packets < u64::from(self.window) {
                // Still inside the logged window: record the row; ΠA stays
                // untouched (it accumulates only after the snapshot).
                aux.window_log.push(input.to_vec());
            } else if !self.additive {
                let mut scratch = self.scratch.borrow_mut();
                let s = &mut *scratch;
                if self.constant_a {
                    // A is packet-invariant: extract it once per store and
                    // skip all per-packet matrix work (ΠA = A^n at merge).
                    if s.const_a.is_empty() {
                        self.extract_a_into(&value.vars, input, s);
                        s.const_a = s.a.clone();
                    }
                } else {
                    self.extract_a_into(&value.vars, input, s);
                    matmul_into(&mut aux.prod, &s.a, self.k(), &mut s.mat_tmp);
                }
            }
            aux.packets += 1;
            // Execute the real update, then snapshot right after the window
            // fills (window vars are settled from this point on).
            exec_real(self, &mut value.vars, input);
            if aux.packets == u64::from(self.window) {
                aux.snapshot = value.vars.to_vec();
            }
            return;
        }
        exec_real(self, &mut value.vars, input);
    }

    fn merge(&self, standing: &mut FoldState, evicted: FoldState) {
        // Fast-kernel merge: the scalar spelling of the §3.2 correction,
        // `corrected = evicted + A^n · (standing − init)`, with `n` from
        // the inline packets counter — the same `scalar_pow` arithmetic
        // the generic constant-A path uses at k = 1. Resetting `packets`
        // to 0 marks the composite: a later cross-shard merge of this
        // value degrades to the additive correction (`A^0 = I`), exactly
        // the consumed-aux semantics of the generic path below.
        if let Some(k) = &self.fast {
            let adj = scalar_pow(k.a, evicted.packets)
                * (standing.vars[0].as_f64() - k.init.as_f64());
            let corrected = match k.ty {
                perfq_lang::ValueType::Float => {
                    Value::Float(evicted.vars[0].as_f64() + adj)
                }
                _ => Value::Int(evicted.vars[0].as_i64() + adj.round() as i64),
            };
            standing.vars = evicted.vars;
            standing.vars[0] = corrected;
            standing.packets = 0;
            standing.aux = None;
            return;
        }
        let Some(aux) = evicted.aux.as_deref() else {
            // Additive, windowless: corrected = evicted + (standing − init),
            // component-wise over the linear variables; window-class
            // variables keep the evicted (most recent) values.
            //
            // Single-stream evictions always carry aux for non-additive or
            // windowed folds, but the sharded drain can legitimately present
            // an aux-less evicted value: a shard-local eviction merge
            // consumes the aux box, and if that key later turns out to
            // straddle shards (only possible when the shard key does not
            // determine the store key — the partitioning prevents it for
            // every `ShardSpec::is_exact` configuration), no exact
            // correction exists. Degrade to the additive correction (ΠA
            // treated as I, window replay skipped) rather than failing —
            // the paper's best-effort stance for cross-switch merges of
            // non-linear state. Deliberate trade-off: this call site cannot
            // distinguish that case from a hypothetical engine bug that
            // dropped aux on the single-stream path, so the old
            // debug_assert would make legitimate inexact-sharded drains
            // panic in debug builds; the single-stream invariant is instead
            // pinned behaviourally by the oracle differential suites.
            let init = &self.init;
            let mut corrected = evicted.vars.clone();
            for &v in &self.linear_vars {
                let adj = standing.vars[v].as_f64() - init[v].as_f64();
                corrected[v] = match self.fold.state[v].ty {
                    perfq_lang::ValueType::Float => {
                        Value::Float(evicted.vars[v].as_f64() + adj)
                    }
                    _ => Value::Int(evicted.vars[v].as_i64() + adj.round() as i64),
                };
            }
            standing.vars = corrected;
            standing.aux = None;
            return;
        };
        if aux.packets <= u64::from(self.window) {
            // The entire residency is inside the log: replay it directly on
            // the standing value — exact by construction.
            for row in &aux.window_log {
                exec_real(self, &mut standing.vars, row);
            }
            return;
        }
        // 1. Replay the logged window on the standing value.
        let mut replayed = standing.vars.clone();
        for row in &aux.window_log {
            exec_real(self, &mut replayed, row);
        }
        // 2. Correct the linear components:
        //    corrected = evicted + ΠA · (replayed − snapshot).
        let k = self.k();
        let snapshot: &[Value] = if self.window == 0 {
            // No window: the "snapshot" is the initial state.
            &self.init
        } else {
            &aux.snapshot
        };
        // All remaining work is straight arithmetic (no fold-body execution),
        // so one scratch borrow covers it; the pooled `delta` buffer keeps
        // the warmed merge path — the sharded drain's inner loop —
        // allocation-free.
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        s.delta.clear();
        s.delta.resize(k, 0.0);
        for (i, &v) in self.linear_vars.iter().enumerate() {
            s.delta[i] = replayed[v].as_f64() - snapshot[v].as_f64();
        }
        // Constant-A folds reconstruct ΠA = A^(post-window packets) here
        // instead of accumulating it per packet. The scalar case (k = 1,
        // e.g. EWMA) stays allocation-free.
        let pow_scalar;
        let pow_matrix;
        let prod: &[f64] = if self.constant_a {
            let n = aux.packets - u64::from(self.window);
            assert!(
                !s.const_a.is_empty(),
                "a key with post-window packets implies A was extracted"
            );
            if k == 1 {
                pow_scalar = [scalar_pow(s.const_a[0], n)];
                &pow_scalar
            } else {
                pow_matrix = matrix_pow(&s.const_a, k, n);
                &pow_matrix
            }
        } else {
            &aux.prod
        };
        let mut corrected = evicted.vars.clone();
        for (i, &v) in self.linear_vars.iter().enumerate() {
            let adj: f64 = if self.additive {
                s.delta[i]
            } else {
                (0..k).map(|j| prod[i * k + j] * s.delta[j]).sum()
            };
            corrected[v] = match self.fold.state[v].ty {
                perfq_lang::ValueType::Float => Value::Float(evicted.vars[v].as_f64() + adj),
                _ => Value::Int(evicted.vars[v].as_i64() + adj.round() as i64),
            };
        }
        // Window variables: the evicted copy saw the most recent packets, so
        // its values are the correct current ones (already in `corrected`).
        standing.vars = corrected;
        standing.aux = None;
    }

    fn merge_mode(&self) -> MergeMode {
        self.mode
    }
}

fn exec_real(ops: &FoldOps, state: &mut [Value], input: &[Value]) {
    ops.exec(state, input);
}

/// Structural check: every assignment to `var` (on any path) has the shape
/// `var ± state-free-expr` (or is absent), and no *other* variable's
/// assignment reads `var`… the latter is unnecessary for A=I of row `var`,
/// but cross-reads would put `var` into another row's coefficients, so we
/// require that none of the tracked linear variables is read by a different
/// variable's assignment. Conditions may read window state freely (they
/// contribute to `B`'s window dependence, not to `A`).
fn is_additive_in(body: &[RStmt], var: usize, linear_vars: &[usize]) -> bool {
    fn expr_reads_state(e: &RExpr, vars: &[usize]) -> bool {
        let mut found = false;
        e.visit(&mut |n| {
            if let RExpr::State(i) = n {
                if vars.contains(i) {
                    found = true;
                }
            }
        });
        found
    }
    fn check(stmts: &[RStmt], var: usize, linear_vars: &[usize]) -> bool {
        for s in stmts {
            match s {
                RStmt::Assign(target, e) => {
                    if *target == var {
                        // Must be State(var) + f or State(var) - f with f
                        // reading no linear state; or f alone (A row = 0).
                        let ok = match e {
                            RExpr::Binary(op, l, r)
                                if matches!(
                                    op,
                                    perfq_lang::ast::BinOp::Add | perfq_lang::ast::BinOp::Sub
                                ) =>
                            {
                                matches!(l.as_ref(), RExpr::State(i) if *i == var)
                                    && !expr_reads_state(r, linear_vars)
                            }
                            other => !expr_reads_state(other, linear_vars),
                        };
                        if !ok {
                            return false;
                        }
                    } else if expr_reads_state(e, &[var]) {
                        // Another variable reads `var`: cross coefficient.
                        return false;
                    }
                }
                RStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    if expr_reads_state(cond, linear_vars) {
                        return false;
                    }
                    if !check(then_body, var, linear_vars) || !check(else_body, var, linear_vars) {
                        return false;
                    }
                }
            }
        }
        true
    }
    // `x = x + f` keeps A=I only if assigned at most once per packet on any
    // path; nested duplicates (x = x+1; x = x+2) still have A=I, so the
    // per-assignment check above suffices.
    check(body, var, linear_vars)
}

/// Classification summary used by reports.
#[must_use]
pub fn describe_class(fold: &FoldIr) -> String {
    match fold.class {
        FoldClass::Linear { window: 0 } => "linear-in-state".to_string(),
        FoldClass::Linear { window } => format!("linear-in-state (window {window})"),
        FoldClass::PureWindow { window } => format!("packet-window({window})"),
        FoldClass::NonLinear => "non-linear (epoch mode)".to_string(),
    }
}

/// Expose per-variable classes for reports.
#[must_use]
pub fn var_classes(fold: &FoldIr) -> Vec<(String, VarClass)> {
    fold.state
        .iter()
        .zip(&fold.var_classes)
        .map(|(v, c)| (v.name.clone(), *c))
        .collect()
}

// ---------------------------------------------------------------------------
// Durable spill-tier codec
// ---------------------------------------------------------------------------

fn put_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            out.put_u8(0);
            out.put_i64(*i);
        }
        Value::Float(f) => {
            out.put_u8(1);
            out.put_f64(*f);
        }
        Value::Bool(b) => {
            out.put_u8(2);
            out.put_u8(u8::from(*b));
        }
    }
}

fn get_value(r: &mut ByteReader<'_>) -> Option<Value> {
    match r.u8()? {
        0 => Some(Value::Int(r.i64()?)),
        1 => Some(Value::Float(r.f64()?)),
        2 => Some(Value::Bool(r.u8()? != 0)),
        _ => None,
    }
}

fn put_values(vals: &[Value], out: &mut Vec<u8>) {
    out.put_u32(vals.len() as u32);
    for v in vals {
        put_value(v, out);
    }
}

fn get_values(r: &mut ByteReader<'_>) -> Option<Vec<Value>> {
    let n = r.u32()? as usize;
    let mut vals = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        vals.push(get_value(r)?);
    }
    Some(vals)
}

/// [`FoldState`] round-trips through the spill tier's WAL byte-exactly:
/// floats persist as their bit patterns and [`StateVec`] re-canonicalizes
/// through [`StateVec::from_slice`], so a recovered fold state compares
/// equal to the never-spilled original for every fold class — including
/// the linear-merge bookkeeping in [`LinearAux`].
impl Persist for FoldState {
    fn encode(&self, out: &mut Vec<u8>) {
        put_values(&self.vars, out);
        out.put_u64(self.packets);
        match &self.aux {
            None => out.put_u8(0),
            Some(aux) => {
                out.put_u8(1);
                out.put_u64(aux.packets);
                out.put_u32(aux.window_log.len() as u32);
                for row in &aux.window_log {
                    put_values(row, out);
                }
                put_values(&aux.snapshot, out);
                out.put_u32(aux.prod.len() as u32);
                for x in &aux.prod {
                    out.put_f64(*x);
                }
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let vars = StateVec::from_slice(&get_values(r)?);
        let packets = r.u64()?;
        let aux = match r.u8()? {
            0 => None,
            1 => {
                let aux_packets = r.u64()?;
                let n_rows = r.u32()? as usize;
                let mut window_log = Vec::with_capacity(n_rows.min(1024));
                for _ in 0..n_rows {
                    window_log.push(get_values(r)?);
                }
                let snapshot = get_values(r)?;
                let n_prod = r.u32()? as usize;
                let mut prod = Vec::with_capacity(n_prod.min(1024));
                for _ in 0..n_prod {
                    prod.push(r.f64()?);
                }
                Some(Box::new(LinearAux {
                    packets: aux_packets,
                    window_log,
                    snapshot,
                    prod,
                }))
            }
            _ => return None,
        };
        Some(FoldState { vars, packets, aux })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfq_kvstore::{CacheGeometry, EvictionPolicy, SplitStore};
    use perfq_lang::ir::exec_stmts;
    use perfq_lang::{compile, fig2};
    use perfq_packet::Nanos;
    use perfq_lang::ResolvedKind;

    fn fold_of(src: &str) -> (FoldIr, Vec<Value>) {
        let prog = compile(src, &fig2::default_params()).unwrap();
        let q = prog
            .queries
            .iter()
            .find(|q| q.fold().is_some())
            .expect("has a groupby");
        match &q.kind {
            ResolvedKind::GroupBy(g) => (g.fold.clone(), prog.param_values()),
            ResolvedKind::Project(_) => unreachable!("found fold above"),
        }
    }

    /// Drive a tiny 1-entry cache so every key alternation evicts, then
    /// compare against a direct (uncached) fold over the same inputs.
    fn run_split_and_oracle(
        fold: FoldIr,
        params: Vec<Value>,
        inputs: &[(u64, Vec<Value>)],
    ) -> (Vec<(u64, Vec<Value>)>, Vec<(u64, Vec<Value>)>) {
        let ops = FoldOps::new(fold.clone(), params.clone());
        let mut store: SplitStore<u64, FoldOps> = SplitStore::new(
            CacheGeometry::fully_associative(1),
            EvictionPolicy::Lru,
            1,
            ops,
        );
        let mut oracle: std::collections::HashMap<u64, Vec<Value>> = Default::default();
        for (i, (key, row)) in inputs.iter().enumerate() {
            store.observe(*key, row.as_slice(), Nanos(i as u64));
            let state = oracle.entry(*key).or_insert_with(|| fold.init_state());
            exec_stmts(&fold.body, state, row, &params).unwrap();
            for (j, var) in fold.state.iter().enumerate() {
                state[j] = state[j].coerce(var.ty);
            }
        }
        store.flush();
        let mut got: Vec<(u64, Vec<Value>)> = store
            .backing()
            .iter()
            .map(|(k, e)| (*k, e.value().expect("linear keys stay valid").vars.to_vec()))
            .collect();
        got.sort_by_key(|(k, _)| *k);
        let mut want: Vec<(u64, Vec<Value>)> = oracle.into_iter().collect();
        want.sort_by_key(|(k, _)| *k);
        (got, want)
    }

    #[test]
    fn counter_uses_additive_fast_path_and_is_exact() {
        let (fold, params) = fold_of("SELECT COUNT GROUPBY srcip");
        let ops = FoldOps::new(fold.clone(), params.clone());
        assert!(ops.is_additive());
        let inputs: Vec<(u64, Vec<Value>)> = (0..100)
            .map(|i| (i % 3, vec![Value::Int(0); 22]))
            .collect();
        let (got, want) = run_split_and_oracle(fold, params, &inputs);
        assert_eq!(got, want);
    }

    #[test]
    fn ewma_merge_matches_oracle_exactly() {
        let src = "def ewma (lat_est, (tin, tout)):\n    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)\n\nSELECT 5tuple, ewma GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold.clone(), params.clone());
        assert!(!ops.is_additive(), "EWMA has A = 1-α ≠ 1");
        // Rows: tin at schema index of `tin`, tout at index of `tout`.
        let schema = perfq_lang::base_schema();
        let (itin, itout) = (
            schema.index_of("tin").unwrap(),
            schema.index_of("tout").unwrap(),
        );
        let mut inputs = Vec::new();
        for i in 0..60u64 {
            let mut row = vec![Value::Int(0); schema.len()];
            row[itin] = Value::Int(1000 * i as i64);
            row[itout] = Value::Int(1000 * i as i64 + 100 + (i as i64 % 7) * 13);
            inputs.push((i % 2, row));
        }
        let (got, want) = run_split_and_oracle(fold, params, &inputs);
        assert_eq!(got.len(), want.len());
        for ((k1, g), (k2, w)) in got.iter().zip(&want) {
            assert_eq!(k1, k2);
            for (a, b) in g.iter().zip(w) {
                assert!(
                    (a.as_f64() - b.as_f64()).abs() < 1e-9,
                    "key {k1}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_seq_window_replay_is_exact() {
        let src = "def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):\n    if lastseq + 1 != tcpseq:\n        oos_count = oos_count + 1\n    lastseq = tcpseq + payload_len\n\nSELECT 5tuple, outofseq GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        assert_eq!(fold.class, FoldClass::Linear { window: 1 });
        let schema = perfq_lang::base_schema();
        let iseq = schema.index_of("tcpseq").unwrap();
        let ilen = schema.index_of("payload_len").unwrap();
        // Two interleaved flows with occasional gaps; cache of 1 forces an
        // eviction on every alternation — the hard case for window replay.
        let mut inputs = Vec::new();
        let mut seqs = [1000i64, 5000i64];
        for i in 0..80u64 {
            let f = (i % 2) as usize;
            let mut row = vec![Value::Int(0); schema.len()];
            // every 7th packet skips ahead (out of sequence)
            if i % 7 == 0 {
                seqs[f] += 500;
            }
            row[iseq] = Value::Int(seqs[f]);
            row[ilen] = Value::Int(100);
            seqs[f] += 100;
            inputs.push((f as u64, row));
        }
        let (got, want) = run_split_and_oracle(fold, params, &inputs);
        assert_eq!(got, want, "windowed linear fold must merge exactly");
    }

    #[test]
    fn sum_with_negative_values_is_exact() {
        let (fold, params) = fold_of("SELECT SUM(tout-tin) GROUPBY srcip");
        let schema = perfq_lang::base_schema();
        let (itin, itout, isrc) = (
            schema.index_of("tin").unwrap(),
            schema.index_of("tout").unwrap(),
            schema.index_of("srcip").unwrap(),
        );
        let mut inputs = Vec::new();
        for i in 0..50u64 {
            let mut row = vec![Value::Int(0); schema.len()];
            row[isrc] = Value::Int((i % 4) as i64);
            row[itin] = Value::Int(10_000);
            row[itout] = Value::Int(10_000 + (i as i64 * 37) % 900);
            inputs.push((i % 4, row));
        }
        let (got, want) = run_split_and_oracle(fold, params, &inputs);
        assert_eq!(got, want);
    }

    #[test]
    fn nonlinear_fold_goes_to_epoch_mode() {
        let src = "def nonmt ((maxseq, nm_count), tcpseq):\n    if maxseq > tcpseq:\n        nm_count = nm_count + 1\n    maxseq = max(maxseq, tcpseq)\n\nSELECT 5tuple, nonmt GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold, params);
        assert_eq!(ops.merge_mode(), MergeMode::Epochs);
        let v = ops.init();
        assert!(v.aux.is_none(), "epoch folds carry no merge aux");
    }

    #[test]
    fn zero_state_fold_overwrites() {
        // Distinct-keys query: GROUPBY with no aggregations.
        let prog = compile(
            "R1 = SELECT COUNT GROUPBY srcip\nR2 = SELECT srcip FROM R1 GROUPBY srcip\n",
            &fig2::default_params(),
        )
        .unwrap();
        let g = match &prog.queries[1].kind {
            ResolvedKind::GroupBy(g) => g,
            _ => panic!("R2 is a groupby"),
        };
        let ops = FoldOps::new(g.fold.clone(), prog.param_values());
        assert_eq!(ops.merge_mode(), MergeMode::Overwrite);
    }

    #[test]
    fn extracted_a_matrix_matches_known_ewma_alpha() {
        let src = "def ewma (lat_est, (tin, tout)):\n    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)\n\nSELECT 5tuple, ewma GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold.clone(), params);
        let schema = perfq_lang::base_schema();
        let mut row = vec![Value::Int(0); schema.len()];
        row[schema.index_of("tin").unwrap()] = Value::Int(10);
        row[schema.index_of("tout").unwrap()] = Value::Int(110);
        let state = fold.init_state();
        let a = ops.extract_a(&state, &row);
        assert_eq!(a.len(), 1);
        assert!((a[0] - 0.875).abs() < 1e-12, "A = 1-α = 0.875, got {}", a[0]);
    }

    #[test]
    fn const_a_kernel_engages_for_ewma_and_counters_only_when_legal() {
        // EWMA: one Float variable, constant A = 1-α.
        let src = "def ewma (lat_est, (tin, tout)):\n    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)\n\nSELECT 5tuple, ewma GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold, params);
        let k = ops.fast.as_ref().expect("EWMA fits the constant-A kernel");
        assert!((k.a - 0.875).abs() < 1e-15, "A = 1-α = 0.875, got {}", k.a);
        assert!(ops.init().aux.is_none(), "fast folds carry no aux box");

        // COUNT: one Int variable, A = 1 — also eligible.
        let (fold, params) = fold_of("SELECT COUNT GROUPBY srcip");
        let ops = FoldOps::new(fold, params);
        let k = ops.fast.as_ref().expect("COUNT fits the kernel");
        assert_eq!(k.a, 1.0);

        // Windowed fold (2 vars, window 1): rejected.
        let src = "def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):\n    if lastseq + 1 != tcpseq:\n        oos_count = oos_count + 1\n    lastseq = tcpseq + payload_len\n\nSELECT 5tuple, outofseq GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        assert!(FoldOps::new(fold, params).fast.is_none());

        // Non-linear fold: rejected (epoch mode).
        let src = "def nonmt ((maxseq, nm_count), tcpseq):\n    if maxseq > tcpseq:\n        nm_count = nm_count + 1\n    maxseq = max(maxseq, tcpseq)\n\nSELECT 5tuple, nonmt GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        assert!(FoldOps::new(fold, params).fast.is_none());
    }

    #[test]
    fn const_a_kernel_is_bit_identical_to_the_bytecode_path() {
        let src = "def ewma (lat_est, (tin, tout)):\n    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)\n\nSELECT 5tuple, ewma GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold.clone(), params.clone());
        let k = ops.fast.as_ref().expect("kernel engages");
        let program = bytecode::compile_stmts_bound(&fold.body, &params);
        let schema = perfq_lang::base_schema();
        let (itin, itout) = (
            schema.index_of("tin").unwrap(),
            schema.index_of("tout").unwrap(),
        );
        let mut fast_vars = StateVec::from_slice(&fold.init_state());
        let mut generic = fold.init_state();
        let mut stack = EvalStack::default();
        for i in 0..500i64 {
            let mut row = vec![Value::Int(0); schema.len()];
            row[itin] = Value::Int(1000 * i);
            row[itout] = Value::Int(1000 * i + 50 + (i % 13) * 17);
            k.update(&mut fast_vars, &row, &params);
            program.exec(&mut stack, &mut generic, &row, &params).unwrap();
            generic[0] = generic[0].coerce(fold.state[0].ty);
            // Exact equality, packet by packet — not a tolerance check.
            assert_eq!(fast_vars[0], generic[0], "packet {i}");
        }
    }

    #[test]
    fn additivity_detection_rejects_scaled_updates() {
        let src = "def decay (s, (pkt_len)):\n    s = 0.5 * s + pkt_len\n\nSELECT srcip, decay GROUPBY srcip\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold, params);
        assert!(!ops.is_additive());
    }

    #[test]
    fn additivity_detection_accepts_guarded_counter() {
        // perc: if qin > K: high += 1; tot += 1 — both additive.
        let prog = fig2::compile(&fig2::HIGH_P99_QUEUE_SIZE).unwrap();
        let g = match &prog.query("R1").unwrap().kind {
            ResolvedKind::GroupBy(g) => g.fold.clone(),
            _ => panic!("R1 aggregates"),
        };
        let ops = FoldOps::new(g, prog.param_values());
        assert!(ops.is_additive());
    }

    #[test]
    fn cross_coupled_linear_fold_merges_exactly() {
        // u += v; v += pkt_len — triangular A, needs the matrix path.
        let src = "def cpl ((u, v), (pkt_len)):\n    u = u + v\n    v = v + pkt_len\n\nSELECT srcip, cpl GROUPBY srcip\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold.clone(), params.clone());
        assert!(!ops.is_additive(), "cross coupling needs ΠA");
        let schema = perfq_lang::base_schema();
        let ilen = schema.index_of("pkt_len").unwrap();
        let mut inputs = Vec::new();
        for i in 0..60u64 {
            let mut row = vec![Value::Int(0); schema.len()];
            row[ilen] = Value::Int(1 + (i as i64 % 5));
            inputs.push((i % 3, row));
        }
        let (got, want) = run_split_and_oracle(fold, params, &inputs);
        assert_eq!(got, want, "matrix merge must be exact for coupled folds");
    }
}
