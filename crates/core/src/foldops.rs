//! Fold-backed value operations for the split key-value store.
//!
//! This is where the paper's merge theory (§3.2) becomes executable for
//! *arbitrary* compiled folds:
//!
//! * **Linear-in-state folds** (`S' = A·S + B`). The cache value carries
//!   auxiliary state: the running coefficient product `Π A` (a k×k matrix
//!   over the linear variables) accumulated since the key's (re)insertion,
//!   plus — for folds whose `A`/`B` read a `w`-packet history window — a log
//!   of the first `w` input rows and a state snapshot taken after them. The
//!   merge then computes
//!
//!   ```text
//!   S_true_after_w = replay(logged rows, from backing value)
//!   S_corrected    = S_evicted + ΠA · (S_true_after_w − S_snapshot)
//!   ```
//!
//!   which reduces to the paper's EWMA formula
//!   `s_corrected = s_new + (1−α)^N (s_backing − s_0)` when k = 1 and w = 0.
//!
//! * **Pure-window folds** — the evicted value alone is correct; overwrite.
//! * **Non-linear folds** — per-epoch values, invalid on re-eviction.
//!
//! The per-packet `A` matrix is extracted numerically: with the window
//! variables pinned at their actual values, the update restricted to the
//! linear variables is affine, so evaluating the body at the zero vector and
//! at each basis vector yields `B` and the columns of `A`. Folds whose every
//! update is *additive* in state (`A = I`, e.g. COUNT/SUM and guarded
//! counters) skip extraction entirely — `ΠA` stays the identity.

use perfq_kvstore::{MergeMode, ValueOps};
use perfq_lang::ir::{exec_stmts, FoldIr, RExpr, RStmt, VarClass};
use perfq_lang::{FoldClass, Value};

/// Auxiliary merge state carried alongside the fold variables in the cache.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinearAux {
    /// Packets folded since (re)insertion.
    pub packets: u64,
    /// The first `window` input rows after insertion (replayed at merge).
    pub window_log: Vec<Vec<Value>>,
    /// State snapshot after the first `window` packets.
    pub snapshot: Vec<Value>,
    /// Row-major ΠA over the linear variables, accumulated after the
    /// snapshot point. Empty when the fold is additive (ΠA = I).
    pub prod: Vec<f64>,
}

/// A fold's state as stored in the split store.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldState {
    /// The state variables, in `FoldIr::state` order.
    pub vars: Vec<Value>,
    /// Merge bookkeeping (only for linear folds).
    pub aux: Option<Box<LinearAux>>,
}

/// [`ValueOps`] implementation driving a compiled [`FoldIr`].
#[derive(Debug, Clone)]
pub struct FoldOps {
    fold: FoldIr,
    params: Vec<Value>,
    /// Indices of `Linear`-classified variables (the mergeable vector).
    linear_vars: Vec<usize>,
    /// Window depth to log + replay.
    window: u32,
    /// True when every linear variable's update has `A = I` (pure
    /// accumulation), so `ΠA` tracking is unnecessary.
    additive: bool,
    mode: MergeMode,
}

impl FoldOps {
    /// Build ops for a compiled fold with bound parameter values.
    #[must_use]
    pub fn new(fold: FoldIr, params: Vec<Value>) -> Self {
        let (mode, window) = match fold.class {
            FoldClass::Linear { window } => (MergeMode::Merge, window),
            FoldClass::PureWindow { .. } => (MergeMode::Overwrite, 0),
            FoldClass::NonLinear => (MergeMode::Epochs, 0),
        };
        let linear_vars = fold.linear_vars();
        let additive = mode == MergeMode::Merge
            && linear_vars
                .iter()
                .all(|v| is_additive_in(&fold.body, *v, &linear_vars));
        FoldOps {
            fold,
            params,
            linear_vars,
            window,
            additive,
            mode,
        }
    }

    /// The underlying fold.
    #[must_use]
    pub fn fold(&self) -> &FoldIr {
        &self.fold
    }

    /// Bound parameter values.
    #[must_use]
    pub fn params(&self) -> &[Value] {
        &self.params
    }

    /// Whether the additive fast path (ΠA = I) is active.
    #[must_use]
    pub fn is_additive(&self) -> bool {
        self.additive
    }

    fn k(&self) -> usize {
        self.linear_vars.len()
    }

    /// Run the fold body once (panics only on internal IR inconsistencies,
    /// which resolution has excluded).
    fn exec(&self, state: &mut [Value], input: &[Value]) {
        exec_stmts(&self.fold.body, state, input, &self.params)
            .expect("type-checked fold body cannot fail at runtime");
        for (i, var) in self.fold.state.iter().enumerate() {
            state[i] = state[i].coerce(var.ty);
        }
    }

    /// Extract this packet's `A` matrix over the linear variables, with
    /// window variables pinned to their current values.
    ///
    /// Numerical care: a unit basis probe would lose `A` entirely whenever
    /// `B` is large (e.g. EWMA over a dropped packet's latency, where
    /// `B = α·(∞ − tin) ≈ 10¹⁸` swamps `A·1` below f64 resolution). We
    /// therefore probe with a basis scaled to dominate `|B|` and divide the
    /// difference back down: the error in each coefficient is then
    /// `O(ε·(1 + |A|))` regardless of `B`. Integer-typed variables use exact
    /// integer probes (their coefficients are integers).
    fn extract_a(&self, state: &[Value], input: &[Value]) -> Vec<f64> {
        let k = self.k();
        let mut base = state.to_vec();
        for &v in &self.linear_vars {
            base[v] = Value::zero(self.fold.state[v].ty);
        }
        let mut f0 = base.clone();
        self.exec(&mut f0, input);
        // Scale the float probe past the largest |B| component.
        let b_max = self
            .linear_vars
            .iter()
            .map(|&v| f0[v].as_f64().abs())
            .fold(1.0_f64, f64::max);
        let float_m = (b_max * 1048576.0).max(1048576.0); // |B|·2^20
        const INT_M: i64 = 1 << 20;
        let mut a = vec![0.0; k * k];
        for (col, &vj) in self.linear_vars.iter().enumerate() {
            let mut probe = base.clone();
            let m = match self.fold.state[vj].ty {
                perfq_lang::ValueType::Float => {
                    probe[vj] = Value::Float(float_m);
                    float_m
                }
                _ => {
                    probe[vj] = Value::Int(INT_M);
                    INT_M as f64
                }
            };
            self.exec(&mut probe, input);
            for (row, &vi) in self.linear_vars.iter().enumerate() {
                a[row * k + col] = (probe[vi].as_f64() - f0[vi].as_f64()) / m;
            }
        }
        a
    }
}

/// `prod ← a · prod` (row-major k×k).
fn matmul_into(prod: &mut [f64], a: &[f64], k: usize) {
    let mut out = vec![0.0; k * k];
    for i in 0..k {
        for j in 0..k {
            let mut acc = 0.0;
            for t in 0..k {
                acc += a[i * k + t] * prod[t * k + j];
            }
            out[i * k + j] = acc;
        }
    }
    prod.copy_from_slice(&out);
}

fn identity(k: usize) -> Vec<f64> {
    let mut m = vec![0.0; k * k];
    for i in 0..k {
        m[i * k + i] = 1.0;
    }
    m
}

impl ValueOps for FoldOps {
    type Value = FoldState;
    type Input = [Value];

    fn init(&self) -> FoldState {
        let aux = if self.mode == MergeMode::Merge {
            Some(Box::new(LinearAux {
                packets: 0,
                window_log: Vec::new(),
                snapshot: Vec::new(),
                prod: if self.additive {
                    Vec::new()
                } else {
                    identity(self.k())
                },
            }))
        } else {
            None
        };
        FoldState {
            vars: self.fold.init_state(),
            aux,
        }
    }

    fn update(&self, value: &mut FoldState, input: &[Value]) {
        if let Some(aux) = value.aux.as_deref_mut() {
            if aux.packets < u64::from(self.window) {
                // Still inside the logged window: record the row; ΠA stays
                // untouched (it accumulates only after the snapshot).
                aux.window_log.push(input.to_vec());
            } else if !self.additive {
                let a = self.extract_a(&value.vars, input);
                matmul_into(&mut aux.prod, &a, self.k());
            }
            aux.packets += 1;
            // Execute the real update, then snapshot right after the window
            // fills (window vars are settled from this point on).
            exec_real(self, &mut value.vars, input);
            if aux.packets == u64::from(self.window) {
                aux.snapshot = value.vars.clone();
            }
            return;
        }
        exec_real(self, &mut value.vars, input);
    }

    fn merge(&self, standing: &mut FoldState, evicted: FoldState) {
        let aux = evicted
            .aux
            .as_deref()
            .expect("linear folds always carry aux state");
        if aux.packets <= u64::from(self.window) {
            // The entire residency is inside the log: replay it directly on
            // the standing value — exact by construction.
            for row in &aux.window_log {
                exec_real(self, &mut standing.vars, row);
            }
            return;
        }
        // 1. Replay the logged window on the standing value.
        let mut replayed = standing.vars.clone();
        for row in &aux.window_log {
            exec_real(self, &mut replayed, row);
        }
        // 2. Correct the linear components:
        //    corrected = evicted + ΠA · (replayed − snapshot).
        let k = self.k();
        let init_state;
        let snapshot: &[Value] = if self.window == 0 {
            // No window: the "snapshot" is the initial state.
            init_state = self.fold.init_state();
            &init_state
        } else {
            &aux.snapshot
        };
        let mut delta = vec![0.0; k];
        for (i, &v) in self.linear_vars.iter().enumerate() {
            delta[i] = replayed[v].as_f64() - snapshot[v].as_f64();
        }
        let mut corrected = evicted.vars.clone();
        for (i, &v) in self.linear_vars.iter().enumerate() {
            let adj: f64 = if self.additive {
                delta[i]
            } else {
                (0..k).map(|j| aux.prod[i * k + j] * delta[j]).sum()
            };
            corrected[v] = match self.fold.state[v].ty {
                perfq_lang::ValueType::Float => Value::Float(evicted.vars[v].as_f64() + adj),
                _ => Value::Int(evicted.vars[v].as_i64() + adj.round() as i64),
            };
        }
        // Window variables: the evicted copy saw the most recent packets, so
        // its values are the correct current ones (already in `corrected`).
        standing.vars = corrected;
        standing.aux = None;
    }

    fn merge_mode(&self) -> MergeMode {
        self.mode
    }
}

fn exec_real(ops: &FoldOps, state: &mut Vec<Value>, input: &[Value]) {
    ops.exec(state, input);
}

/// Structural check: every assignment to `var` (on any path) has the shape
/// `var ± state-free-expr` (or is absent), and no *other* variable's
/// assignment reads `var`… the latter is unnecessary for A=I of row `var`,
/// but cross-reads would put `var` into another row's coefficients, so we
/// require that none of the tracked linear variables is read by a different
/// variable's assignment. Conditions may read window state freely (they
/// contribute to `B`'s window dependence, not to `A`).
fn is_additive_in(body: &[RStmt], var: usize, linear_vars: &[usize]) -> bool {
    fn expr_reads_state(e: &RExpr, vars: &[usize]) -> bool {
        let mut found = false;
        e.visit(&mut |n| {
            if let RExpr::State(i) = n {
                if vars.contains(i) {
                    found = true;
                }
            }
        });
        found
    }
    fn check(stmts: &[RStmt], var: usize, linear_vars: &[usize]) -> bool {
        for s in stmts {
            match s {
                RStmt::Assign(target, e) => {
                    if *target == var {
                        // Must be State(var) + f or State(var) - f with f
                        // reading no linear state; or f alone (A row = 0).
                        let ok = match e {
                            RExpr::Binary(op, l, r)
                                if matches!(
                                    op,
                                    perfq_lang::ast::BinOp::Add | perfq_lang::ast::BinOp::Sub
                                ) =>
                            {
                                matches!(l.as_ref(), RExpr::State(i) if *i == var)
                                    && !expr_reads_state(r, linear_vars)
                            }
                            other => !expr_reads_state(other, linear_vars),
                        };
                        if !ok {
                            return false;
                        }
                    } else if expr_reads_state(e, &[var]) {
                        // Another variable reads `var`: cross coefficient.
                        return false;
                    }
                }
                RStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    if expr_reads_state(cond, linear_vars) {
                        return false;
                    }
                    if !check(then_body, var, linear_vars) || !check(else_body, var, linear_vars) {
                        return false;
                    }
                }
            }
        }
        true
    }
    // `x = x + f` keeps A=I only if assigned at most once per packet on any
    // path; nested duplicates (x = x+1; x = x+2) still have A=I, so the
    // per-assignment check above suffices.
    check(body, var, linear_vars)
}

/// Classification summary used by reports.
#[must_use]
pub fn describe_class(fold: &FoldIr) -> String {
    match fold.class {
        FoldClass::Linear { window: 0 } => "linear-in-state".to_string(),
        FoldClass::Linear { window } => format!("linear-in-state (window {window})"),
        FoldClass::PureWindow { window } => format!("packet-window({window})"),
        FoldClass::NonLinear => "non-linear (epoch mode)".to_string(),
    }
}

/// Expose per-variable classes for reports.
#[must_use]
pub fn var_classes(fold: &FoldIr) -> Vec<(String, VarClass)> {
    fold.state
        .iter()
        .zip(&fold.var_classes)
        .map(|(v, c)| (v.name.clone(), *c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfq_kvstore::{CacheGeometry, EvictionPolicy, SplitStore};
    use perfq_lang::{compile, fig2};
    use perfq_packet::Nanos;
    use perfq_lang::ResolvedKind;

    fn fold_of(src: &str) -> (FoldIr, Vec<Value>) {
        let prog = compile(src, &fig2::default_params()).unwrap();
        let q = prog
            .queries
            .iter()
            .find(|q| q.fold().is_some())
            .expect("has a groupby");
        match &q.kind {
            ResolvedKind::GroupBy(g) => (g.fold.clone(), prog.param_values()),
            ResolvedKind::Project(_) => unreachable!("found fold above"),
        }
    }

    /// Drive a tiny 1-entry cache so every key alternation evicts, then
    /// compare against a direct (uncached) fold over the same inputs.
    fn run_split_and_oracle(
        fold: FoldIr,
        params: Vec<Value>,
        inputs: &[(u64, Vec<Value>)],
    ) -> (Vec<(u64, Vec<Value>)>, Vec<(u64, Vec<Value>)>) {
        let ops = FoldOps::new(fold.clone(), params.clone());
        let mut store: SplitStore<u64, FoldOps> = SplitStore::new(
            CacheGeometry::fully_associative(1),
            EvictionPolicy::Lru,
            1,
            ops,
        );
        let mut oracle: std::collections::HashMap<u64, Vec<Value>> = Default::default();
        for (i, (key, row)) in inputs.iter().enumerate() {
            store.observe(*key, row.as_slice(), Nanos(i as u64));
            let state = oracle.entry(*key).or_insert_with(|| fold.init_state());
            exec_stmts(&fold.body, state, row, &params).unwrap();
            for (j, var) in fold.state.iter().enumerate() {
                state[j] = state[j].coerce(var.ty);
            }
        }
        store.flush();
        let mut got: Vec<(u64, Vec<Value>)> = store
            .backing()
            .iter()
            .map(|(k, e)| (*k, e.value().expect("linear keys stay valid").vars.clone()))
            .collect();
        got.sort_by_key(|(k, _)| *k);
        let mut want: Vec<(u64, Vec<Value>)> = oracle.into_iter().collect();
        want.sort_by_key(|(k, _)| *k);
        (got, want)
    }

    #[test]
    fn counter_uses_additive_fast_path_and_is_exact() {
        let (fold, params) = fold_of("SELECT COUNT GROUPBY srcip");
        let ops = FoldOps::new(fold.clone(), params.clone());
        assert!(ops.is_additive());
        let inputs: Vec<(u64, Vec<Value>)> = (0..100)
            .map(|i| (i % 3, vec![Value::Int(0); 22]))
            .collect();
        let (got, want) = run_split_and_oracle(fold, params, &inputs);
        assert_eq!(got, want);
    }

    #[test]
    fn ewma_merge_matches_oracle_exactly() {
        let src = "def ewma (lat_est, (tin, tout)):\n    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)\n\nSELECT 5tuple, ewma GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold.clone(), params.clone());
        assert!(!ops.is_additive(), "EWMA has A = 1-α ≠ 1");
        // Rows: tin at schema index of `tin`, tout at index of `tout`.
        let schema = perfq_lang::base_schema();
        let (itin, itout) = (
            schema.index_of("tin").unwrap(),
            schema.index_of("tout").unwrap(),
        );
        let mut inputs = Vec::new();
        for i in 0..60u64 {
            let mut row = vec![Value::Int(0); schema.len()];
            row[itin] = Value::Int(1000 * i as i64);
            row[itout] = Value::Int(1000 * i as i64 + 100 + (i as i64 % 7) * 13);
            inputs.push((i % 2, row));
        }
        let (got, want) = run_split_and_oracle(fold, params, &inputs);
        assert_eq!(got.len(), want.len());
        for ((k1, g), (k2, w)) in got.iter().zip(&want) {
            assert_eq!(k1, k2);
            for (a, b) in g.iter().zip(w) {
                assert!(
                    (a.as_f64() - b.as_f64()).abs() < 1e-9,
                    "key {k1}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_seq_window_replay_is_exact() {
        let src = "def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):\n    if lastseq + 1 != tcpseq:\n        oos_count = oos_count + 1\n    lastseq = tcpseq + payload_len\n\nSELECT 5tuple, outofseq GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        assert_eq!(fold.class, FoldClass::Linear { window: 1 });
        let schema = perfq_lang::base_schema();
        let iseq = schema.index_of("tcpseq").unwrap();
        let ilen = schema.index_of("payload_len").unwrap();
        // Two interleaved flows with occasional gaps; cache of 1 forces an
        // eviction on every alternation — the hard case for window replay.
        let mut inputs = Vec::new();
        let mut seqs = [1000i64, 5000i64];
        for i in 0..80u64 {
            let f = (i % 2) as usize;
            let mut row = vec![Value::Int(0); schema.len()];
            // every 7th packet skips ahead (out of sequence)
            if i % 7 == 0 {
                seqs[f] += 500;
            }
            row[iseq] = Value::Int(seqs[f]);
            row[ilen] = Value::Int(100);
            seqs[f] += 100;
            inputs.push((f as u64, row));
        }
        let (got, want) = run_split_and_oracle(fold, params, &inputs);
        assert_eq!(got, want, "windowed linear fold must merge exactly");
    }

    #[test]
    fn sum_with_negative_values_is_exact() {
        let (fold, params) = fold_of("SELECT SUM(tout-tin) GROUPBY srcip");
        let schema = perfq_lang::base_schema();
        let (itin, itout, isrc) = (
            schema.index_of("tin").unwrap(),
            schema.index_of("tout").unwrap(),
            schema.index_of("srcip").unwrap(),
        );
        let mut inputs = Vec::new();
        for i in 0..50u64 {
            let mut row = vec![Value::Int(0); schema.len()];
            row[isrc] = Value::Int((i % 4) as i64);
            row[itin] = Value::Int(10_000);
            row[itout] = Value::Int(10_000 + (i as i64 * 37) % 900);
            inputs.push((i % 4, row));
        }
        let (got, want) = run_split_and_oracle(fold, params, &inputs);
        assert_eq!(got, want);
    }

    #[test]
    fn nonlinear_fold_goes_to_epoch_mode() {
        let src = "def nonmt ((maxseq, nm_count), tcpseq):\n    if maxseq > tcpseq:\n        nm_count = nm_count + 1\n    maxseq = max(maxseq, tcpseq)\n\nSELECT 5tuple, nonmt GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold, params);
        assert_eq!(ops.merge_mode(), MergeMode::Epochs);
        let v = ops.init();
        assert!(v.aux.is_none(), "epoch folds carry no merge aux");
    }

    #[test]
    fn zero_state_fold_overwrites() {
        // Distinct-keys query: GROUPBY with no aggregations.
        let prog = compile(
            "R1 = SELECT COUNT GROUPBY srcip\nR2 = SELECT srcip FROM R1 GROUPBY srcip\n",
            &fig2::default_params(),
        )
        .unwrap();
        let g = match &prog.queries[1].kind {
            ResolvedKind::GroupBy(g) => g,
            _ => panic!("R2 is a groupby"),
        };
        let ops = FoldOps::new(g.fold.clone(), prog.param_values());
        assert_eq!(ops.merge_mode(), MergeMode::Overwrite);
    }

    #[test]
    fn extracted_a_matrix_matches_known_ewma_alpha() {
        let src = "def ewma (lat_est, (tin, tout)):\n    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)\n\nSELECT 5tuple, ewma GROUPBY 5tuple\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold.clone(), params);
        let schema = perfq_lang::base_schema();
        let mut row = vec![Value::Int(0); schema.len()];
        row[schema.index_of("tin").unwrap()] = Value::Int(10);
        row[schema.index_of("tout").unwrap()] = Value::Int(110);
        let state = fold.init_state();
        let a = ops.extract_a(&state, &row);
        assert_eq!(a.len(), 1);
        assert!((a[0] - 0.875).abs() < 1e-12, "A = 1-α = 0.875, got {}", a[0]);
    }

    #[test]
    fn additivity_detection_rejects_scaled_updates() {
        let src = "def decay (s, (pkt_len)):\n    s = 0.5 * s + pkt_len\n\nSELECT srcip, decay GROUPBY srcip\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold, params);
        assert!(!ops.is_additive());
    }

    #[test]
    fn additivity_detection_accepts_guarded_counter() {
        // perc: if qin > K: high += 1; tot += 1 — both additive.
        let prog = fig2::compile(&fig2::HIGH_P99_QUEUE_SIZE).unwrap();
        let g = match &prog.query("R1").unwrap().kind {
            ResolvedKind::GroupBy(g) => g.fold.clone(),
            _ => panic!("R1 aggregates"),
        };
        let ops = FoldOps::new(g, prog.param_values());
        assert!(ops.is_additive());
    }

    #[test]
    fn cross_coupled_linear_fold_merges_exactly() {
        // u += v; v += pkt_len — triangular A, needs the matrix path.
        let src = "def cpl ((u, v), (pkt_len)):\n    u = u + v\n    v = v + pkt_len\n\nSELECT srcip, cpl GROUPBY srcip\n";
        let (fold, params) = fold_of(src);
        let ops = FoldOps::new(fold.clone(), params.clone());
        assert!(!ops.is_additive(), "cross coupling needs ΠA");
        let schema = perfq_lang::base_schema();
        let ilen = schema.index_of("pkt_len").unwrap();
        let mut inputs = Vec::new();
        for i in 0..60u64 {
            let mut row = vec![Value::Int(0); schema.len()];
            row[ilen] = Value::Int(1 + (i as i64 % 5));
            inputs.push((i % 3, row));
        }
        let (got, want) = run_split_and_oracle(fold, params, &inputs);
        assert_eq!(got, want, "matrix merge must be exact for coupled folds");
    }
}
