//! The measurement runtime: executes a compiled program over the record
//! stream a network produces, exactly as the hardware would.
//!
//! Per record (one packet's observation at one queue):
//!
//! 1. root queries reading the base table receive the record's row;
//! 2. `WHERE` filters run as match-action predicates;
//! 3. projections compute derived fields;
//! 4. `GROUPBY`s update their split key-value store — cache hit updates in
//!    place, misses initialize, bucket overflow evicts to the backing store
//!    with the fold-class-appropriate merge;
//! 5. each aggregation emits its refreshed `(key, state)` row downstream, so
//!    composed queries see the running output (the paper's streaming
//!    semantics; note downstream sees the *cache* value — the merged truth
//!    lives only in the backing store, §3.2).
//!
//! The per-record path is a single pass over the flat `ExecPlan`
//! (`plan.rs`): filters and projections run as compiled bytecode over a
//! reusable value stack, group keys build into an inline key, and every
//! intermediate row lands in a per-node buffer reused across records — the
//! steady state allocates nothing per record.
//!
//! After [`Runtime::finish`] flushes the caches, [`Runtime::collect`] pulls
//! every query's final table from the backing stores, evaluates collect-time
//! joins, and reports per-key validity.

use crate::compiler::CompiledProgram;
use crate::durable::Durability;
use crate::foldops::{FoldOps, FoldState};
use crate::plan::{lane_mask, ExecPlan, NodeKind, RowSource, CHUNK, LANES};
use crate::result::{value_key, DeltaCursor, DeltaRow, ResultRow, ResultSet, ResultTable};
use perfq_kvstore::{
    read_manifest, write_manifest, BackingStore, CacheGeometry, InlineKey, SplitStore,
    StoreSnapshot, StoreStats,
};
use perfq_lang::bytecode::EvalStack;
use perfq_lang::ir::eval;
use perfq_lang::resolve::GroupOutput;
use perfq_lang::{QueryInput, ResolvedKind, ResolvedProgram, Value, ValueType};
use perfq_packet::Nanos;
use perfq_switch::QueueRecord;

/// Captured rows of a selection over the packet table.
#[derive(Debug, Clone, Default)]
pub(crate) struct Capture {
    pub rows: Vec<Vec<Value>>,
    pub total: u64,
    pub limit: usize,
}

impl Capture {
    /// Count a match; copy the row only while below the capture limit.
    pub(crate) fn push(&mut self, row: &[Value]) {
        self.total += 1;
        if self.rows.len() < self.limit {
            self.rows.push(row.to_vec());
        }
    }
}

/// Lifecycle misuse detected at a batch entry point.
///
/// These conditions were previously `debug_assert!`s, which vanish in
/// release builds and let misuse silently corrupt state (records folded
/// into already-flushed caches split residencies into spurious epochs).
/// The checks are now always on: each public ingest entry verifies once
/// per call — once per batch, not per record — and the `try_*` twins
/// surface the condition as this typed error instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleError {
    /// Records were fed to a runtime after [`Runtime::finish`]: the caches
    /// are already flushed, so further folds would silently diverge from
    /// the drained results.
    ProcessAfterFinish,
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifecycleError::ProcessAfterFinish => {
                write!(f, "records processed after finish(): the measurement window is already drained")
            }
        }
    }
}

impl std::error::Error for LifecycleError {}

/// The streaming executor.
#[derive(Debug)]
pub struct Runtime {
    compiled: CompiledProgram,
    params: Vec<Value>,
    stores: Vec<Option<SplitStore<InlineKey, FoldOps>>>,
    captures: Vec<Option<Capture>>,
    plan: ExecPlan,
    /// Reusable base-row buffer (`process_record`).
    row_buf: Vec<Value>,
    /// Per-node output-row buffers, reused across records.
    outputs: Vec<Vec<Value>>,
    /// Per-node: did the node emit a row for the current record?
    live: Vec<bool>,
    /// Shared bytecode evaluation stack.
    stack: EvalStack,
    /// Group-key scratch.
    key_buf: Vec<i64>,
    /// Vectorized path: one contiguous base-row matrix for a chunk of
    /// [`LANES`] records (lane `i` at `i * row_width ..`) — a single
    /// allocation so the node sweeps walk one dense block instead of
    /// chasing per-lane `Vec` headers.
    lane_rows: Vec<Value>,
    /// Vectorized path: observation times of the current chunk.
    lane_nows: Vec<Nanos>,
    /// Vectorized path: per-node flat output buffers, `arity` values per
    /// lane (`lane * arity ..`), written only at live lanes.
    lane_out: Vec<Vec<Value>>,
    /// Vectorized path: per-node survivor bitmask — bit `i` set when the
    /// node emitted a row for lane `i` of the current chunk.
    lane_live: Vec<u64>,
    /// Output-row width of each node (0 for non-emitting nodes).
    lane_arity: Vec<usize>,
    /// Vectorized path: flow-run coalescing (default on). Off = one probe
    /// per surviving row, the pre-coalescing engine — kept as a live
    /// baseline for the interleaved `query_runtime_bursty` benchmarks.
    coalesce: bool,
    records: u64,
    finished: bool,
    /// Incremental read path: pooled per-store snapshot frames, reused
    /// across polls so a warmed poll refreshes its frames allocation-free.
    poll_frames: Vec<Option<StoreSnapshot<InlineKey, FoldState>>>,
    /// Incremental read path: previous-frame bookkeeping for
    /// [`Runtime::poll_delta`].
    poll_cursor: DeltaCursor,
    /// Record index of the last manifested checkpoint — names the capture
    /// files safe to drop once the next checkpoint's manifest lands.
    persisted_at: Option<u64>,
    /// Durable-tier configuration, when [`Runtime::enable_durability`] was
    /// called on this (stand-alone) runtime. Worker runtimes inside a
    /// sharded or multi-program deployment leave this `None` — the owning
    /// plane holds the config and the manifest.
    durability: Option<Durability>,
}

impl Runtime {
    /// Instantiate the hardware state for a compiled program.
    #[must_use]
    pub fn new(compiled: CompiledProgram) -> Self {
        let params = compiled.program.param_values();
        let n = compiled.program.queries.len();
        let mut stores = Vec::with_capacity(n);
        let mut captures = Vec::with_capacity(n);
        for (idx, q) in compiled.program.queries.iter().enumerate() {
            match &compiled.stores[idx] {
                Some(plan) => stores.push(Some(SplitStore::new(
                    plan.geometry,
                    plan.policy,
                    plan.hash_seed,
                    plan.ops.clone(),
                ))),
                None => stores.push(None),
            }
            captures.push(
                matches!(
                    (&q.kind, &q.input),
                    (ResolvedKind::Project(_), QueryInput::Base)
                )
                .then(|| Capture {
                    limit: compiled.options.capture_limit,
                    ..Default::default()
                }),
            );
        }
        let mut plan = ExecPlan::build(&compiled.program);
        // Queries whose store is provided externally (multi-query store
        // dedup) leave the streaming pass entirely; see
        // `CompiledProgram::deduped_queries`.
        if !compiled.deduped_queries.is_empty() {
            for &idx in &compiled.deduped_queries {
                assert!(
                    !plan.nodes[idx].emits,
                    "only non-emitting aggregations may be deduplicated"
                );
                plan.nodes[idx].active = false;
            }
            plan.recompute_base_cols(&compiled.program);
        }
        let lane_arity = plan
            .nodes
            .iter()
            .map(|node| match &node.kind {
                NodeKind::Project { cols } => cols.len(),
                NodeKind::GroupBy { output, .. } => output.len(),
            })
            .collect();
        Runtime {
            compiled,
            params,
            stores,
            captures,
            plan,
            row_buf: Vec::new(),
            outputs: vec![Vec::new(); n],
            live: vec![false; n],
            stack: EvalStack::new(),
            key_buf: Vec::new(),
            lane_rows: Vec::new(),
            lane_nows: Vec::new(),
            lane_out: vec![Vec::new(); n],
            lane_live: vec![0; n],
            lane_arity,
            coalesce: true,
            records: 0,
            finished: false,
            poll_frames: Vec::new(),
            poll_cursor: DeltaCursor::default(),
            persisted_at: None,
            durability: None,
        }
    }

    /// Toggle flow-run coalescing in the vectorized sweep (default on).
    /// Both settings are byte-identical in results; off reproduces the
    /// one-probe-per-row engine for same-run benchmark comparisons.
    pub fn set_run_coalescing(&mut self, on: bool) {
        self.coalesce = on;
    }

    /// The compiled program.
    #[must_use]
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// Records processed so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bitmap of base-schema columns the compiled plan reads — what the
    /// multi-query dataplane unions across programs to materialize each
    /// record's row once.
    #[must_use]
    pub(crate) fn base_cols(&self) -> u64 {
        self.plan.base_cols
    }

    /// Cross-query store dedup: turn query `idx` off in the streaming pass.
    /// Legal only for non-emitting aggregations (nothing downstream reads
    /// them); their store is substituted from the owning runtime at finish
    /// time ([`Runtime::adopt_store`]).
    pub(crate) fn deactivate_query(&mut self, idx: usize) {
        let node = &mut self.plan.nodes[idx];
        assert!(
            !node.emits,
            "only non-emitting aggregations may be deduplicated"
        );
        node.active = false;
        self.plan.recompute_base_cols(&self.compiled.program);
    }

    /// Cross-query CSE: annotate query `idx` to read its filter verdict
    /// and/or group key from the shared per-record scratch.
    pub(crate) fn set_shared_slots(
        &mut self,
        idx: usize,
        filter: Option<u32>,
        key: Option<u32>,
    ) {
        let node = &mut self.plan.nodes[idx];
        if filter.is_some() {
            debug_assert!(node.filter.is_some(), "shared filter on a filterless node");
            node.shared_filter = filter;
        }
        if key.is_some() {
            debug_assert!(
                matches!(node.kind, NodeKind::GroupBy { .. }),
                "shared key on a non-aggregation"
            );
            node.shared_key = key;
        }
    }

    /// Cross-query store dedup, collect side: query `dst`'s (never updated)
    /// store adopts the owning runtime's finished results, so collection
    /// reads exactly what a private store would have held. Only the backing
    /// table is copied — O(distinct keys), not O(cache geometry).
    pub(crate) fn adopt_store(&mut self, dst: usize, src: &Runtime, src_idx: usize) {
        // Always-on (not debug_assert): adopting from an unflushed owner
        // would silently drop its cache-resident state in release builds.
        assert!(self.finished && src.finished, "adopt after finish");
        match (self.stores[dst].as_mut(), src.stores[src_idx].as_ref()) {
            (Some(d), Some(s)) => d.adopt_results_from(s),
            _ => unreachable!("dedup only pairs aggregation stores"),
        }
    }

    /// [`Runtime::adopt_store`] within one runtime (two identical GROUPBYs
    /// in the *same* program; owners precede aliases, so `src_idx < dst`).
    pub(crate) fn adopt_store_within(&mut self, dst: usize, src_idx: usize) {
        assert!(self.finished, "adopt after finish");
        assert!(src_idx < dst, "owners precede aliases");
        let (left, right) = self.stores.split_at_mut(dst);
        match (right[0].as_mut(), left[src_idx].as_ref()) {
            (Some(d), Some(s)) => d.adopt_results_from(s),
            _ => unreachable!("dedup only pairs aggregation stores"),
        }
    }

    /// Dynamic lifecycle, inverse of [`Runtime::deactivate_query`]: bring a
    /// previously-deduplicated aggregation back into the streaming pass.
    /// Used when an alias is promoted to owner (its owner was uninstalled)
    /// or when re-provisioning diverges an alias pair's geometries. The
    /// node's filter bytecode was compiled at plan-build time, before any
    /// deactivation, so reactivation restores exactly the original node.
    pub(crate) fn reactivate_query(&mut self, idx: usize) {
        self.plan.nodes[idx].active = true;
        self.plan.recompute_base_cols(&self.compiled.program);
    }

    /// Dynamic lifecycle: drop every shared-prefix annotation. The
    /// multi-query dataplane re-runs its sharing analysis after an
    /// install/uninstall and re-applies fresh slot numbers; stale slots
    /// would index into rebuilt scratch vectors.
    pub(crate) fn clear_shared_slots(&mut self) {
        for node in &mut self.plan.nodes {
            node.shared_filter = None;
            node.shared_key = None;
        }
    }

    /// Dynamic lifecycle: live-migrate query `idx`'s store to a newly
    /// provisioned geometry ([`SplitStore::migrate_geometry`]) and keep the
    /// compiled store plan in sync, so physical-identity checks
    /// (`phys_eq`) observe the geometry the store actually runs at.
    pub(crate) fn migrate_store(&mut self, idx: usize, geometry: CacheGeometry) {
        if let Some(store) = self.stores[idx].as_mut() {
            store.migrate_geometry(geometry);
        }
        if let Some(plan) = self.compiled.stores[idx].as_mut() {
            plan.geometry = geometry;
        }
    }

    /// Dynamic lifecycle: snapshot query `idx`'s live store (cache-resident
    /// state, backing table and statistics).
    pub(crate) fn clone_store(&self, idx: usize) -> SplitStore<InlineKey, FoldOps> {
        self.stores[idx]
            .as_ref()
            .expect("lifecycle only snapshots aggregation stores")
            .clone()
    }

    /// Dynamic lifecycle: replace query `idx`'s store wholesale — the
    /// receiving half of an alias promotion or a sharing repair, where the
    /// owner's live state moves into the (previously dormant) alias slot.
    pub(crate) fn set_store(&mut self, idx: usize, store: SplitStore<InlineKey, FoldOps>) {
        assert!(
            self.stores[idx].is_some(),
            "lifecycle only replaces aggregation stores"
        );
        self.stores[idx] = Some(store);
    }

    /// Dynamic lifecycle: adopt results from a **flushed** snapshot of an
    /// owner store — the collect side of uninstalling an alias query, where
    /// the owner keeps running and the departing program reads a frozen
    /// copy of the shared state.
    pub(crate) fn adopt_store_snapshot(
        &mut self,
        dst: usize,
        snapshot: &SplitStore<InlineKey, FoldOps>,
    ) {
        assert!(self.finished, "adopt after finish");
        self.stores[dst]
            .as_mut()
            .expect("dedup only pairs aggregation stores")
            .adopt_results_from(snapshot);
    }

    /// Store statistics of a GROUPBY query (by query index).
    #[must_use]
    pub fn store_stats(&self, idx: usize) -> Option<StoreStats> {
        self.stores.get(idx)?.as_ref().map(SplitStore::stats)
    }

    /// True after [`Runtime::finish`]: the caches are flushed, results are
    /// collectable, and further ingest is a lifecycle error.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Reject ingest on a finished runtime — the always-on half of the
    /// lifecycle guard (the per-record `debug_assert`s in the shared
    /// internals only cover debug builds). Checked once per public entry
    /// call, so the release-mode cost is one branch per batch.
    #[inline]
    fn check_live(&self) -> Result<(), LifecycleError> {
        if self.finished {
            Err(LifecycleError::ProcessAfterFinish)
        } else {
            Ok(())
        }
    }

    /// Process one queue record. The base row materializes into a buffer
    /// reused across calls, and only the columns the compiled program reads
    /// are written — no per-record allocation, no dead column extraction.
    ///
    /// # Panics
    ///
    /// Panics (also in release builds) when called after
    /// [`Runtime::finish`]; use [`Runtime::try_process_record`] to handle
    /// the condition as a typed error instead.
    pub fn process_record(&mut self, rec: &QueueRecord) {
        self.try_process_record(rec)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible twin of [`Runtime::process_record`]: returns
    /// [`LifecycleError::ProcessAfterFinish`] instead of panicking when the
    /// runtime is already finished.
    pub fn try_process_record(&mut self, rec: &QueueRecord) -> Result<(), LifecycleError> {
        self.check_live()?;
        let now = rec.observed_at();
        let mut row = std::mem::take(&mut self.row_buf);
        rec.write_row_masked(&mut row, self.plan.base_cols);
        self.process_row_shared(&row, now, &[], &[]);
        self.row_buf = row;
        Ok(())
    }

    /// Process a batch of queue records — the **vectorized** entry point.
    /// Semantically identical to calling [`Runtime::process_record`] per
    /// element (and tested byte-identical to be, `tests/batch_equivalence.rs`),
    /// but executed node-at-a-time: the batch is cut into cache-sized
    /// chunks (at most one `u64` mask word of lanes), each chunk's rows
    /// materialize into reusable lane buffers, and each GroupBy/Project
    /// node sweeps only the set bits of its `u64` survivor bitmask — its
    /// own filter verdict fuses into the sweep, clearing the lane's bit in
    /// the same row visit. A node's store and fold kernel stay hot across
    /// the chunk instead of being evicted by the other nodes' work after
    /// every record.
    ///
    /// # Panics
    ///
    /// Panics (also in release builds) when called after
    /// [`Runtime::finish`]; use [`Runtime::try_process_batch`] to handle
    /// the condition as a typed error instead.
    pub fn process_batch(&mut self, recs: &[QueueRecord]) {
        self.try_process_batch(recs)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible twin of [`Runtime::process_batch`]: returns
    /// [`LifecycleError::ProcessAfterFinish`] instead of panicking when the
    /// runtime is already finished. The check runs once per batch, not per
    /// record.
    pub fn try_process_batch(&mut self, recs: &[QueueRecord]) -> Result<(), LifecycleError> {
        self.check_live()?;
        let mask = self.plan.base_cols;
        let width = QueueRecord::row_width();
        let mut rows = std::mem::take(&mut self.lane_rows);
        let mut nows = std::mem::take(&mut self.lane_nows);
        if rows.len() != LANES * width {
            rows.clear();
            rows.resize(LANES * width, Value::Int(0));
        }
        for chunk in recs.chunks(CHUNK) {
            nows.clear();
            for (rec, lane) in chunk.iter().zip(rows.chunks_exact_mut(width)) {
                rec.write_row_masked_into(lane, mask);
                nows.push(rec.observed_at());
            }
            self.process_lanes_shared(&rows, width, chunk.len(), &nows, &[], &[], 0);
        }
        self.lane_rows = rows;
        self.lane_nows = nows;
        Ok(())
    }

    /// Process one base-schema row observed at time `now`: a single flat
    /// pass over the plan in topological order. Each node reads its input
    /// from the base row or an upstream node's output slot and writes its
    /// own slot; inactive (collect-only) nodes are skipped.
    ///
    /// # Panics
    ///
    /// Panics (also in release builds) when called after
    /// [`Runtime::finish`].
    pub fn process_row(&mut self, row: &[Value], now: Nanos) {
        self.check_live().unwrap_or_else(|e| panic!("{e}"));
        self.process_row_shared(row, now, &[], &[]);
    }

    /// [`Runtime::process_row`] with a cross-query shared scratch: the
    /// multi-query dataplane evaluates each *unique* base filter and group
    /// key once per record ([`crate::MultiRuntime`]), and nodes annotated
    /// with a shared slot read the precomputed verdict/key instead of
    /// re-evaluating. With empty slices (the single-program entry points)
    /// this is exactly the unshared pass — annotations only exist on
    /// runtimes installed behind a `MultiRuntime`.
    pub(crate) fn process_row_shared(
        &mut self,
        row: &[Value],
        now: Nanos,
        shared_pass: &[bool],
        shared_keys: &[InlineKey],
    ) {
        debug_assert!(!self.finished, "process after finish");
        self.records += 1;
        let Runtime {
            plan,
            params,
            stores,
            captures,
            outputs,
            live,
            stack,
            key_buf,
            ..
        } = self;
        for (idx, node) in plan.nodes.iter().enumerate() {
            live[idx] = false;
            if !node.active {
                continue;
            }
            // Upstream slots have smaller indices: split so the input row
            // and this node's output buffer borrow disjoint ranges.
            let (upstream, rest) = outputs.split_at_mut(idx);
            let input: &[Value] = match node.source {
                RowSource::Base => row,
                RowSource::Node(p) => {
                    if !live[p] {
                        continue;
                    }
                    &upstream[p]
                }
            };
            if let Some(slot) = node.shared_filter {
                // The verdict was computed once for every program sharing
                // this predicate (base-rooted nodes only, so it applies to
                // exactly this input row).
                if !shared_pass[slot as usize] {
                    continue;
                }
            } else if let Some(f) = &node.filter {
                if !f.pass(stack, input, params) {
                    continue;
                }
            }
            match &node.kind {
                NodeKind::Project { cols } => {
                    let out = &mut rest[0];
                    out.clear();
                    for c in cols {
                        out.push(
                            c.eval(stack, &[], input, params)
                                .expect("type-checked projection cannot fail"),
                        );
                    }
                    if let Some(cap) = captures[idx].as_mut() {
                        cap.push(out);
                    }
                    live[idx] = true;
                }
                NodeKind::GroupBy { key_cols, output } => {
                    let key = if let Some(slot) = node.shared_key {
                        shared_keys[slot as usize].clone()
                    } else {
                        build_group_key(key_cols, input, key_buf)
                    };
                    let store = stores[idx].as_mut().expect("groupby has a store");
                    let state = store.observe_ref(key, input, now);
                    if node.emits {
                        let out = &mut rest[0];
                        out.clear();
                        for o in output {
                            out.push(match o {
                                GroupOutput::Key(i) => input[key_cols[*i]],
                                GroupOutput::StateVar(j) => state.vars[*j],
                            });
                        }
                        live[idx] = true;
                    }
                }
            }
        }
    }

    /// The vectorized sweep: process one chunk of at most [`LANES`]
    /// materialized rows node-at-a-time under survivor bitmasks.
    ///
    /// `rows` is a flat lane matrix: lane `i` of the chunk's `n` records is
    /// `rows[i * width..]`, observed at `nows[i]`; bit `i` of a mask stands
    /// for that lane. Each node starts from its input mask — the full chunk
    /// for base-rooted nodes, the upstream node's live mask otherwise —
    /// ANDs in a precomputed shared-slot verdict mask if the multi-query
    /// prefix computed one, and sweeps the set bits in ascending lane
    /// order; an unshared filter evaluates *inside* the sweep, clearing
    /// the lane's bit and skipping the node body in the same row visit.
    /// This is byte-identical to the record-at-a-time
    /// pass ([`Runtime::process_row`] per row) because every store and
    /// capture buffer belongs to exactly one node and set bits are visited
    /// in record order: each store sees the same update sequence, each
    /// capture the same rows in the same order, and a downstream node's
    /// lane input is exactly the output its upstream computed for that
    /// record (per-lane buffers are only read at lanes the upstream's live
    /// mask covers). Warm chunks allocate nothing: lane buffers, masks and
    /// the shared stack are all reused across calls.
    pub(crate) fn process_lanes_shared(
        &mut self,
        rows: &[Value],
        width: usize,
        n: usize,
        nows: &[Nanos],
        shared_masks: &[u64],
        shared_keys: &[InlineKey],
        n_keys: usize,
    ) {
        debug_assert!(!self.finished, "process after finish");
        debug_assert!(n <= LANES && n == nows.len() && rows.len() >= n * width);
        self.records += n as u64;
        let full = lane_mask(n);
        let Runtime {
            plan,
            params,
            stores,
            captures,
            stack,
            key_buf,
            lane_out,
            lane_live,
            lane_arity,
            coalesce,
            ..
        } = self;
        for (idx, node) in plan.nodes.iter().enumerate() {
            lane_live[idx] = 0;
            if !node.active {
                continue;
            }
            let in_mask = match node.source {
                RowSource::Base => full,
                RowSource::Node(p) => lane_live[p],
            };
            if in_mask == 0 {
                continue;
            }
            // Upstream slots have smaller indices: split so lane inputs and
            // this node's output buffer borrow disjoint ranges.
            let (upstream, rest) = lane_out.split_at_mut(idx);
            let input_of = |lane: usize| -> &[Value] {
                match node.source {
                    RowSource::Base => &rows[lane * width..(lane + 1) * width],
                    RowSource::Node(p) => {
                        let a = lane_arity[p];
                        &upstream[p][lane * a..(lane + 1) * a]
                    }
                }
            };
            let (mask, fused) = if let Some(slot) = node.shared_filter {
                // The chunk's verdicts were computed once for every program
                // sharing this predicate (base-rooted nodes only, so the
                // mask applies to exactly these input rows).
                (in_mask & shared_masks[slot as usize], None)
            } else if let Some(f) = &node.filter {
                // Unshared filters fuse into the sweep below: the verdict
                // and the node's work happen in one visit while the lane
                // row is hot, exactly as the record-at-a-time pass does
                // (a separate `survivors` pass would walk the rows twice;
                // the precomputed masks above already paid their second
                // walk once for ALL programs sharing the predicate).
                (in_mask, Some(f))
            } else {
                (in_mask, None)
            };
            if mask == 0 {
                continue;
            }
            match &node.kind {
                NodeKind::Project { cols } => {
                    let a = lane_arity[idx];
                    let out = &mut rest[0];
                    if out.len() < LANES * a {
                        out.resize(LANES * a, Value::Int(0));
                    }
                    let mut live = mask;
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let input = input_of(lane);
                        if let Some(f) = fused {
                            if !f.pass(stack, input, params) {
                                live &= !(1u64 << lane);
                                continue;
                            }
                        }
                        for (j, c) in cols.iter().enumerate() {
                            out[lane * a + j] = c
                                .eval(stack, &[], input, params)
                                .expect("type-checked projection cannot fail");
                        }
                        if let Some(cap) = captures[idx].as_mut() {
                            cap.push(&out[lane * a..(lane + 1) * a]);
                        }
                    }
                    lane_live[idx] = live;
                }
                NodeKind::GroupBy { key_cols, output } => {
                    let a = lane_arity[idx];
                    let store = stores[idx].as_mut().expect("groupby has a store");
                    let out = &mut rest[0];
                    if node.emits && out.len() < LANES * a {
                        out.resize(LANES * a, Value::Int(0));
                    }
                    // Flow-run coalescing: traces are bursty (packet trains
                    // per flow), so consecutive survivors often carry the
                    // same group key. The first packet of a run pays the
                    // full probe and holds the slot ([`SlotHandle`]); the
                    // rest of the run folds straight into the held slot.
                    // Pre-reducible folds (integer `s ± B` — counters,
                    // sums) go further: the run's contributions accumulate
                    // in a register and land in ONE store write. Both paths
                    // are byte-identical to one probe per row — a run is
                    // never interrupted by another key, so every post-first
                    // packet is a guaranteed hit on an unmoved slot.
                    let prereduce =
                        *coalesce && !node.emits && store.ops().run_prereducible();
                    let mut run: Option<(InlineKey, perfq_kvstore::SlotHandle)> = None;
                    // Pending pre-reduced packets on the held slot.
                    let mut acc: i64 = 0;
                    let mut acc_n: u64 = 0;
                    let mut acc_now = Nanos(0);
                    let mut live = mask;
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let input = input_of(lane);
                        if let Some(f) = fused {
                            if !f.pass(stack, input, params) {
                                live &= !(1u64 << lane);
                                continue;
                            }
                        }
                        let key = if let Some(slot) = node.shared_key {
                            shared_keys[lane * n_keys + slot as usize].clone()
                        } else {
                            build_group_key(key_cols, input, key_buf)
                        };
                        match &run {
                            Some((rkey, handle)) if *coalesce && *rkey == key => {
                                let handle = *handle;
                                if prereduce {
                                    if let Some(b) = store.ops().run_contribution(input) {
                                        acc = acc.wrapping_add(b);
                                        acc_n += 1;
                                        acc_now = nows[lane];
                                        continue;
                                    }
                                    // Ineligible row (its `B` is not an
                                    // integer): settle what's pending, then
                                    // fold this row individually.
                                    if acc_n > 0 {
                                        store.observe_run_folded(
                                            handle,
                                            acc_n,
                                            acc_now,
                                            |ops, v| ops.apply_run(v, acc, acc_n),
                                        );
                                        acc = 0;
                                        acc_n = 0;
                                    }
                                }
                                let state = store.observe_run_next(handle, input, nows[lane]);
                                if node.emits {
                                    for (j, o) in output.iter().enumerate() {
                                        out[lane * a + j] = match o {
                                            GroupOutput::Key(i) => input[key_cols[*i]],
                                            GroupOutput::StateVar(v) => state.vars[*v],
                                        };
                                    }
                                }
                            }
                            _ => {
                                // Run break: settle pending pre-reduced
                                // packets on the previous slot before the
                                // new key's probe can move anything.
                                if acc_n > 0 {
                                    let (_, handle) =
                                        run.as_ref().expect("pending run holds a slot");
                                    store.observe_run_folded(
                                        *handle,
                                        acc_n,
                                        acc_now,
                                        |ops, v| ops.apply_run(v, acc, acc_n),
                                    );
                                    acc = 0;
                                    acc_n = 0;
                                }
                                let (state, handle) =
                                    store.observe_run_first(key.clone(), input, nows[lane]);
                                if node.emits {
                                    for (j, o) in output.iter().enumerate() {
                                        out[lane * a + j] = match o {
                                            GroupOutput::Key(i) => input[key_cols[*i]],
                                            GroupOutput::StateVar(v) => state.vars[*v],
                                        };
                                    }
                                }
                                run = Some((key, handle));
                            }
                        }
                    }
                    // Chunk end: settle the final pending run.
                    if acc_n > 0 {
                        let (_, handle) = run.as_ref().expect("pending run holds a slot");
                        store.observe_run_folded(*handle, acc_n, acc_now, |ops, v| {
                            ops.apply_run(v, acc, acc_n)
                        });
                    }
                    if node.emits {
                        lane_live[idx] = live;
                    }
                }
            }
        }
    }

    /// Replay a packet stream through a network straight into this runtime:
    /// queue records stream from the output queues into the `ExecPlan` in
    /// batches of `batch`, with no intermediate record collection anywhere —
    /// the network's event heap, route and batch buffers are pooled, the
    /// queues release into a sink, and the runtime's row/stack buffers are
    /// reused, so a warmed replay performs zero heap allocations per packet
    /// (pinned by `tests/alloc_discipline.rs`).
    ///
    /// This is the canonical end-to-end entry the examples and the
    /// `end_to_end` benchmarks use; it is exactly equivalent to collecting
    /// every record and calling [`Runtime::process_batch`] on the result.
    pub fn process_network(
        &mut self,
        net: &mut perfq_switch::Network,
        packets: impl Iterator<Item = perfq_packet::Packet>,
        batch: usize,
    ) {
        net.run_batched(packets, batch, |chunk| self.process_batch(chunk));
    }

    /// Periodically evict idle keys so the backing store stays fresh
    /// (§3.2's freshness note). `cutoff` evicts keys idle since before it.
    pub fn refresh_backing(&mut self, cutoff: Nanos) {
        for store in self.stores.iter_mut().flatten() {
            store.evict_idle_since(cutoff);
        }
    }

    /// Flush all caches to the backing stores (end of measurement window).
    /// Durable stores first fold their spill tier's on-disk truth back into
    /// RAM ([`SplitStore::materialize_spill`]: disk frames, then the newer
    /// RAM records, then the flushed cache on top — temporal merge order),
    /// so [`Runtime::collect`] and every drain that follows — including
    /// `MultiRuntime::uninstall`'s — read through the tier.
    pub fn finish(&mut self) {
        for store in self.stores.iter_mut().flatten() {
            store
                .materialize_spill()
                .expect("spill-tier read at finish");
            store.flush();
        }
        self.finished = true;
    }

    /// Merge another **finished** runtime of the same compiled program into
    /// this one — the drain step of the sharded dataplane, where each worker
    /// core's private runtime collapses into one for collection.
    ///
    /// Per-query stores merge through the fold merge machinery
    /// (`SplitStore::absorb_store`), capture buffers concatenate (the shared
    /// capture limit still bounds retained rows; totals always sum), and
    /// record counts add. Exact whenever the two runtimes processed
    /// key-disjoint partitions of one stream for every non-order-free store
    /// — the invariant `ShardedRuntime`'s key-hash partitioning provides.
    /// Bounded captures are the one stream-order exception: when a
    /// selection matches more rows than the capture limit, the retained
    /// rows are `self`'s prefix then `other`'s (not the global stream's
    /// first `limit`) — totals and row counts still match the
    /// single-stream engine exactly (see the capture caveat in
    /// [`crate::sharded`]).
    ///
    /// # Panics
    ///
    /// Panics if either runtime has not been [`Runtime::finish`]ed, or if
    /// the programs' shapes differ.
    pub fn absorb_finished(&mut self, other: Runtime) {
        assert!(
            self.finished && other.finished,
            "absorb_finished requires both runtimes finished"
        );
        assert_eq!(
            self.compiled.program.queries.len(),
            other.compiled.program.queries.len(),
            "runtimes must run the same program"
        );
        self.records += other.records;
        for (mine, theirs) in self.stores.iter_mut().zip(other.stores) {
            match (mine.as_mut(), theirs) {
                (Some(a), Some(b)) => a.absorb_store(b),
                (None, None) => {}
                _ => unreachable!("same program implies same store layout"),
            }
        }
        for (mine, theirs) in self.captures.iter_mut().zip(other.captures) {
            if let (Some(a), Some(b)) = (mine.as_mut(), theirs) {
                a.total += b.total;
                let room = a.limit.saturating_sub(a.rows.len());
                a.rows.extend(b.rows.into_iter().take(room));
            }
        }
    }

    /// Pull every query's final table. Call after [`Runtime::finish`].
    #[must_use]
    pub fn collect(&self) -> ResultSet {
        assert!(self.finished, "collect() requires finish()");
        let mut group_finals: Vec<Option<Vec<(Vec<i64>, Vec<Value>, bool)>>> = Vec::new();
        for store in &self.stores {
            match store {
                Some(s) => group_finals.push(Some(group_rows(s.backing()))),
                None => group_finals.push(None),
            }
        }
        collect_results(
            &self.compiled.program,
            &group_finals,
            &self.captures,
            &self.params,
        )
    }

    /// Poll the current results **without stopping the world** — the
    /// incremental read path. Returns exactly what [`Runtime::finish`] +
    /// [`Runtime::collect`] would return on a clone of this runtime, but
    /// the live runtime is untouched: caches stay resident, ingest
    /// continues afterwards, and the eventual drain is byte-identical to a
    /// never-polled replay (pinned by `tests/poll_equivalence.rs`).
    ///
    /// Each store's consistent frame lands in a pooled
    /// [`StoreSnapshot`] reused across polls
    /// ([`SplitStore::snapshot_into`]), so a warmed poll refreshes its
    /// frames allocation-free; only the result-row materialization below
    /// them allocates, exactly as `collect` does.
    pub fn poll_results(&mut self) -> ResultSet {
        self.refresh_poll_frames();
        let mut group_finals: Vec<Option<Vec<(Vec<i64>, Vec<Value>, bool)>>> = Vec::new();
        for frame in &self.poll_frames {
            match frame {
                Some(f) => group_finals.push(Some(group_rows(f.backing()))),
                None => group_finals.push(None),
            }
        }
        collect_results(
            &self.compiled.program,
            &group_finals,
            &self.captures,
            &self.params,
        )
    }

    /// Poll and stream only the rows that are new or changed since the
    /// previous `poll_delta` — per-epoch delta emission through the
    /// dataplane's `FnMut` sink idiom. Returns the new epoch number (1 on
    /// the first poll, whose delta is the whole frame). The cumulative
    /// frame remains available via [`Runtime::poll_results`];
    /// multi-program planes compose the same machinery from
    /// [`crate::DeltaCursor`].
    pub fn poll_delta(&mut self, sink: impl FnMut(DeltaRow<'_>)) -> u64 {
        let frame = self.poll_results();
        self.poll_cursor.advance(frame, sink)
    }

    /// Attach a durable spill tier to every aggregation store (off by
    /// default; see [`crate::durable`]). Evictions past the configured
    /// high-water mark append to per-store WALs on the config's backend;
    /// [`Runtime::persist`] checkpoints, and [`Runtime::recover`] resumes
    /// a crashed deployment.
    pub fn enable_durability(&mut self, d: Durability) -> std::io::Result<()> {
        self.enable_durability_prefixed(&d, "")?;
        self.durability = Some(d);
        Ok(())
    }

    /// Attach spill tiers with an extra deployment-level name component
    /// (`s<i>_` per shard, `p<id>_` per installed program) — the plane
    /// keeps the [`Durability`] config and the manifest.
    pub(crate) fn enable_durability_prefixed(
        &mut self,
        d: &Durability,
        sub: &str,
    ) -> std::io::Result<()> {
        for (idx, store) in self.stores.iter_mut().enumerate() {
            if let Some(s) = store {
                s.enable_spill(
                    d.backend().clone(),
                    &format!("{}{}q{idx}_", d.prefix(), sub),
                    d.spill(),
                )?;
            }
        }
        Ok(())
    }

    /// Checkpoint every durable store at `record_index` (flush, snapshot
    /// the RAM table, write a checkpoint frame, group-commit), then persist the
    /// bounded capture buffers — base-table selections carry stream-order
    /// state the stores don't, so a recovered deployment's captures must
    /// cover the full prefix, not just the re-ingested suffix. The caller
    /// owns the manifest write that makes the checkpoint recoverable.
    pub(crate) fn persist_stores(
        &mut self,
        record_index: u64,
        d: &Durability,
        sub: &str,
    ) -> std::io::Result<()> {
        for store in self.stores.iter_mut().flatten() {
            if store.spill().is_some() {
                store.persist(record_index)?;
            }
        }
        for (idx, cap) in self.captures.iter().enumerate() {
            if let Some(cap) = cap {
                let bytes = crate::durable::encode_capture(&cap.rows, cap.total);
                // The record index is part of the name: the previous
                // checkpoint's capture file stays intact until the manifest
                // advances past it, so a crash mid-persist recovers the old
                // captures, not a torn mix of old stores and new rows.
                let name = format!("{}{}cap{idx}_{record_index}", d.prefix(), sub);
                let mut be = d.backend().lock().expect("backend mutex");
                be.write_atomic(&name, &bytes)?;
                be.sync(&name)?;
            }
        }
        Ok(())
    }

    /// Fold every durable store's WAL into its segment and drop the
    /// previous checkpoint's capture files (`stale`, when it differs from
    /// the index just manifested). Call only after a manifested checkpoint.
    pub(crate) fn compact_stores(
        &mut self,
        d: &Durability,
        sub: &str,
        stale: Option<u64>,
    ) -> std::io::Result<()> {
        for store in self.stores.iter_mut().flatten() {
            store.compact_spill()?;
        }
        if let Some(old) = stale {
            for (idx, cap) in self.captures.iter().enumerate() {
                if cap.is_some() {
                    let name = format!("{}{}cap{idx}_{old}", d.prefix(), sub);
                    d.backend().lock().expect("backend mutex").remove(&name)?;
                }
            }
        }
        Ok(())
    }

    /// Repair and re-attach every store's spill tier after a crash.
    pub(crate) fn recover_stores(
        &mut self,
        d: &Durability,
        sub: &str,
        manifest: Option<u64>,
    ) -> std::io::Result<()> {
        for (idx, store) in self.stores.iter_mut().enumerate() {
            if let Some(s) = store {
                s.recover_spill(
                    d.backend().clone(),
                    &format!("{}{}q{idx}_", d.prefix(), sub),
                    d.spill(),
                    manifest,
                )?;
            }
        }
        if let Some(at) = manifest {
            for (idx, cap) in self.captures.iter_mut().enumerate() {
                let Some(cap) = cap else { continue };
                let name = format!("{}{}cap{idx}_{at}", d.prefix(), sub);
                let bytes = {
                    let mut be = d.backend().lock().expect("backend mutex");
                    be.read(&name)?
                };
                if let Some((rows, total)) = bytes.as_deref().and_then(crate::durable::decode_capture)
                {
                    cap.rows = rows;
                    cap.total = total;
                }
            }
        }
        Ok(())
    }

    /// Durably checkpoint the deployment at the current record index:
    /// every store checkpoints ([`SplitStore::persist`]), then the single
    /// deployment manifest advances atomically, then the WALs compact into
    /// their segments. On success a crash at *any* later point recovers to
    /// exactly this state ([`Runtime::recover`]).
    ///
    /// # Panics
    ///
    /// Panics unless [`Runtime::enable_durability`] was called.
    pub fn persist(&mut self) -> std::io::Result<()> {
        let d = self
            .durability
            .clone()
            .expect("persist requires enable_durability");
        let at = self.records;
        self.persist_stores(at, &d, "")?;
        write_manifest(d.backend(), &d.manifest_name(), at)?;
        let stale = self.persisted_at.filter(|&old| old != at);
        self.persisted_at = Some(at);
        self.compact_stores(&d, "", stale)
    }

    /// Recover a crashed deployment from its durable tier: read the
    /// manifest, repair every store's files against it
    /// ([`SplitStore::recover_spill`]), and return the runtime together
    /// with the **resume index** — the record count at the recovered
    /// checkpoint. The caller re-ingests the stream from that record on;
    /// results are then byte-identical to a never-crashed deployment that
    /// persisted at the same indices (`tests/durability_crash.rs`).
    pub fn recover(compiled: CompiledProgram, d: Durability) -> std::io::Result<(Runtime, u64)> {
        let mut rt = Runtime::new(compiled);
        let resume = read_manifest(d.backend(), &d.manifest_name())?;
        rt.recover_stores(&d, "", resume)?;
        let at = resume.unwrap_or(0);
        rt.records = at;
        rt.persisted_at = resume;
        rt.durability = Some(d);
        Ok((rt, at))
    }

    /// Refresh the pooled per-store snapshot frames to this instant.
    fn refresh_poll_frames(&mut self) {
        if self.poll_frames.len() != self.stores.len() {
            self.poll_frames = self
                .stores
                .iter()
                .map(|s| {
                    s.as_ref()
                        .map(|store| StoreSnapshot::new(store.backing().mode()))
                })
                .collect();
        }
        for (frame, store) in self.poll_frames.iter_mut().zip(&self.stores) {
            if let (Some(f), Some(s)) = (frame.as_mut(), store.as_ref()) {
                s.snapshot_into(f);
            }
        }
    }
}

/// Sorted `(key, state, valid)` rows of one aggregation's combined results —
/// the single construction [`Runtime::collect`] and the poll paths share,
/// so the drained and polled views of a store can never diverge.
fn group_rows(backing: &BackingStore<InlineKey, FoldState>) -> Vec<(Vec<i64>, Vec<Value>, bool)> {
    let mut rows: Vec<(Vec<i64>, Vec<Value>, bool)> = backing
        .iter()
        .map(|(k, entry)| (k.to_vec(), entry.latest().vars.to_vec(), entry.is_valid()))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Poll a program's current results across one or more runtimes — the
/// shared engine behind [`crate::MultiRuntime::poll`],
/// [`crate::MultiSharded::poll`] and [`crate::ShardedRuntime::poll_results`].
///
/// `capture_shards` lists the program's runtimes in shard order (a single
/// element for unsharded planes): their capture buffers combine exactly as
/// [`Runtime::absorb_finished`] combines them (prefix-then-suffix under the
/// shared limit; totals always sum), and the first element donates the
/// program, parameters and table schemas. `stores[q]` names, per query, the
/// `(runtime, store index)` sources whose frames merge into that query's
/// result — several for sharded planes, a redirected owner for deduped
/// alias queries, `None` for storeless queries. Sources are only read:
/// every live runtime keeps its caches resident and keeps ingesting after
/// the poll.
pub(crate) fn poll_collect(
    capture_shards: &[&Runtime],
    stores: &[Option<Vec<(&Runtime, usize)>>],
) -> ResultSet {
    let lead = capture_shards[0];
    let mut group_finals: Vec<Option<Vec<(Vec<i64>, Vec<Value>, bool)>>> =
        Vec::with_capacity(stores.len());
    for src in stores {
        match src {
            Some(list) => {
                let (rt0, q0) = list[0];
                let store0 = rt0.stores[q0]
                    .as_ref()
                    .expect("poll sources are aggregation stores");
                let mut snap = store0.snapshot();
                for &(rt, q) in &list[1..] {
                    rt.stores[q]
                        .as_ref()
                        .expect("poll sources are aggregation stores")
                        .snapshot_merge_into(&mut snap);
                }
                group_finals.push(Some(group_rows(snap.backing())));
            }
            None => group_finals.push(None),
        }
    }
    let captures: Vec<Option<Capture>> = if capture_shards.len() == 1 {
        lead.captures.clone()
    } else {
        (0..lead.captures.len())
            .map(|idx| {
                lead.captures[idx].as_ref().map(|first| {
                    let mut merged = first.clone();
                    for w in &capture_shards[1..] {
                        let b = w.captures[idx]
                            .as_ref()
                            .expect("shard runtimes share one program");
                        merged.total += b.total;
                        let room = merged.limit.saturating_sub(merged.rows.len());
                        merged.rows.extend(b.rows.iter().take(room).cloned());
                    }
                    merged
                })
            })
            .collect()
    };
    collect_results(&lead.compiled.program, &group_finals, &captures, &lead.params)
}

/// Build a `GROUPBY` key from an input row — the single construction the
/// per-node path and the multi-query shared prefix both use, so the two
/// can never diverge. Short keys collect into a stack array
/// (`InlineKey::from_slice` stays the one canonical constructor); wider
/// keys go through the reusable `spill` scratch.
pub(crate) fn build_group_key(
    key_cols: &[usize],
    input: &[Value],
    spill: &mut Vec<i64>,
) -> InlineKey {
    if key_cols.len() <= perfq_kvstore::INLINE_KEY_WORDS {
        let mut words = [0i64; perfq_kvstore::INLINE_KEY_WORDS];
        for (slot, c) in words.iter_mut().zip(key_cols) {
            *slot = value_key(&input[*c]);
        }
        InlineKey::from_slice(&words[..key_cols.len()])
    } else {
        spill.clear();
        for c in key_cols {
            spill.push(value_key(&input[*c]));
        }
        InlineKey::from_slice(spill)
    }
}

/// Reconstruct a key word as a typed value (floats were stored as bits).
fn key_to_value(word: i64, ty: ValueType) -> Value {
    match ty {
        ValueType::Int => Value::Int(word),
        ValueType::Float => Value::Float(f64::from_bits(word as u64)),
        ValueType::Bool => Value::Bool(word != 0),
    }
}

/// Build the final tables shared by the runtime and the oracle.
pub(crate) fn collect_results(
    program: &ResolvedProgram,
    group_finals: &[Option<Vec<(Vec<i64>, Vec<Value>, bool)>>],
    captures: &[Option<Capture>],
    params: &[Value],
) -> ResultSet {
    let mut tables: Vec<ResultTable> = Vec::with_capacity(program.queries.len());
    for (idx, q) in program.queries.iter().enumerate() {
        let table = match &q.kind {
            ResolvedKind::GroupBy(g) => {
                let finals = group_finals[idx].as_ref().expect("groupby finals");
                let rows = finals
                    .iter()
                    .map(|(key, vars, valid)| ResultRow {
                        values: g
                            .output
                            .iter()
                            .enumerate()
                            .map(|(pos, o)| match o {
                                GroupOutput::Key(i) => {
                                    key_to_value(key[*i], q.schema.type_of(pos))
                                }
                                GroupOutput::StateVar(j) => vars[*j],
                            })
                            .collect(),
                        valid: *valid,
                    })
                    .collect();
                ResultTable {
                    name: q.name.clone(),
                    schema: q.schema.clone(),
                    rows,
                    total_matched: finals.len() as u64,
                }
            }
            ResolvedKind::Project(cols) => match &q.input {
                QueryInput::Base => {
                    let cap = captures[idx].as_ref().expect("base projections capture");
                    ResultTable {
                        name: q.name.clone(),
                        schema: q.schema.clone(),
                        rows: cap
                            .rows
                            .iter()
                            .map(|values| ResultRow {
                                values: values.clone(),
                                valid: true,
                            })
                            .collect(),
                        total_matched: cap.total,
                    }
                }
                QueryInput::Table(src) => {
                    let input = &tables[*src];
                    let rows = project_rows(
                        input.rows.iter().map(|r| (r.values.as_slice(), r.valid)),
                        q.pre_filter.as_ref(),
                        cols,
                        params,
                    );
                    let total = rows.len() as u64;
                    ResultTable {
                        name: q.name.clone(),
                        schema: q.schema.clone(),
                        rows,
                        total_matched: total,
                    }
                }
                QueryInput::Join { left, right, on } => {
                    let joined = join_rows(&tables[*left], &tables[*right], on);
                    let rows = project_rows(
                        joined.iter().map(|(v, ok)| (v.as_slice(), *ok)),
                        q.pre_filter.as_ref(),
                        cols,
                        params,
                    );
                    let total = rows.len() as u64;
                    ResultTable {
                        name: q.name.clone(),
                        schema: q.schema.clone(),
                        rows,
                        total_matched: total,
                    }
                }
            },
        };
        tables.push(table);
    }
    ResultSet { tables }
}

fn project_rows<'a>(
    input: impl Iterator<Item = (&'a [Value], bool)>,
    filter: Option<&perfq_lang::RExpr>,
    cols: &[perfq_lang::ProjCol],
    params: &[Value],
) -> Vec<ResultRow> {
    let mut out = Vec::new();
    for (row, valid) in input {
        if let Some(f) = filter {
            let pass = eval(f, &[], row, params)
                .expect("type-checked filter cannot fail")
                .truthy();
            if !pass {
                continue;
            }
        }
        out.push(ResultRow {
            values: cols
                .iter()
                .map(|c| eval(&c.expr, &[], row, params).expect("type-checked projection"))
                .collect(),
            valid,
        });
    }
    out
}

/// Inner-join two keyed tables on the named key columns, producing rows laid
/// out as `resolve::joined_schema` declares: key values, then the left
/// table's non-key columns, then the right's.
fn join_rows(left: &ResultTable, right: &ResultTable, on: &[String]) -> Vec<(Vec<Value>, bool)> {
    let lkeys: Vec<usize> = on
        .iter()
        .map(|n| left.schema.index_of(n).expect("join key in left schema"))
        .collect();
    let rkeys: Vec<usize> = on
        .iter()
        .map(|n| right.schema.index_of(n).expect("join key in right schema"))
        .collect();
    let rmap = right.key_map(&rkeys);
    // Precompute the non-key column order once instead of scanning the key
    // list per cell per row.
    let l_nonkey: Vec<usize> = (0..left.schema.len())
        .filter(|i| !lkeys.contains(i))
        .collect();
    let r_nonkey: Vec<usize> = (0..right.schema.len())
        .filter(|i| !rkeys.contains(i))
        .collect();
    let mut out = Vec::new();
    for lrow in &left.rows {
        let key: Vec<i64> = lkeys.iter().map(|c| value_key(&lrow.values[*c])).collect();
        let Some(rrow) = rmap.get(&key) else {
            continue;
        };
        let mut values: Vec<Value> =
            Vec::with_capacity(lkeys.len() + l_nonkey.len() + r_nonkey.len());
        values.extend(lkeys.iter().map(|c| lrow.values[*c]));
        values.extend(l_nonkey.iter().map(|c| lrow.values[*c]));
        values.extend(r_nonkey.iter().map(|c| rrow.values[*c]));
        out.push((values, lrow.valid && rrow.valid));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile_program, CompileOptions};
    use perfq_lang::{compile as lang_compile, fig2};
    use perfq_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn runtime(src: &str) -> Runtime {
        let prog = lang_compile(src, &fig2::default_params()).unwrap();
        Runtime::new(compile_program(prog, CompileOptions::default()).unwrap())
    }

    fn record(src_last: u8, seq: u32, tin: u64, tout: Option<u64>, qsize: u32) -> QueueRecord {
        QueueRecord {
            packet: PacketBuilder::tcp()
                .src(Ipv4Addr::new(10, 0, 0, src_last), 1000)
                .dst(Ipv4Addr::new(172, 16, 0, 1), 80)
                .seq(seq)
                .payload_len(100)
                .uniq(u64::from(seq))
                .build(),
            qid: 1,
            tin: Nanos(tin),
            tout: tout.map(Nanos).unwrap_or(Nanos::INFINITY),
            qsize,
            qout: 0,
            path: 0,
        }
    }

    #[test]
    fn processing_after_finish_is_a_typed_error_in_every_build() {
        // Release builds used to rely on debug_assert! here, so a drained
        // runtime silently mis-folded records. The check is now an
        // always-on typed error, paid once per batch entry.
        let mut rt = runtime("SELECT COUNT GROUPBY srcip");
        let rec = record(1, 1, 0, Some(50), 0);
        rt.try_process_record(&rec).expect("live runtime accepts");
        rt.finish();
        assert!(rt.is_finished());
        let err = rt.try_process_record(&rec).expect_err("finished rejects");
        assert_eq!(err, LifecycleError::ProcessAfterFinish);
        let err = rt
            .try_process_batch(std::slice::from_ref(&rec))
            .expect_err("finished rejects batches");
        assert!(format!("{err}").contains("after finish()"));
        // The record never folded: the count is still 1.
        let rs = rt.collect();
        let t = &rs.tables[0];
        assert_eq!(t.rows.len(), 1);
        assert_eq!(
            t.rows[0].values[t.schema.index_of("COUNT").unwrap()].as_i64(),
            1
        );
    }

    #[test]
    fn count_groupby_counts_per_key() {
        let mut rt = runtime("SELECT COUNT GROUPBY srcip");
        for i in 0..10u32 {
            rt.process_record(&record((i % 2) as u8, i, 100 * u64::from(i), Some(100 * u64::from(i) + 50), 0));
        }
        rt.finish();
        let rs = rt.collect();
        let t = &rs.tables[0];
        assert_eq!(t.rows.len(), 2);
        let counts: Vec<i64> = t
            .rows
            .iter()
            .map(|r| r.values[t.schema.index_of("COUNT").unwrap()].as_i64())
            .collect();
        assert_eq!(counts.iter().sum::<i64>(), 10);
    }

    #[test]
    fn where_filters_records() {
        let mut rt = runtime("SELECT srcip FROM T WHERE tout - tin > 1ms");
        rt.process_record(&record(1, 1, 0, Some(100), 0)); // 100 ns: filtered
        rt.process_record(&record(2, 2, 0, Some(2_000_000), 0)); // 2 ms: kept
        rt.finish();
        let rs = rt.collect();
        assert_eq!(rs.tables[0].rows.len(), 1);
        assert_eq!(rs.tables[0].total_matched, 1);
    }

    #[test]
    fn drop_filter_matches_infinite_tout() {
        let mut rt = runtime("SELECT COUNT GROUPBY srcip WHERE tout == infinity");
        rt.process_record(&record(1, 1, 0, Some(100), 0));
        rt.process_record(&record(1, 2, 10, None, 3)); // drop
        rt.process_record(&record(1, 3, 20, None, 3)); // drop
        rt.finish();
        let rs = rt.collect();
        let t = &rs.tables[0];
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].values[t.schema.index_of("COUNT").unwrap()].as_i64(), 2);
    }

    #[test]
    fn loss_rate_join_end_to_end() {
        let src = "R1 = SELECT COUNT GROUPBY 5tuple\nR2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity\nR3 = SELECT R2.COUNT/R1.COUNT FROM R1 JOIN R2 ON 5tuple\n";
        let mut rt = runtime(src);
        // Flow A: 4 packets, 1 drop. Flow B: 2 packets, 0 drops.
        for (i, (src_ip, dropped)) in [(1u8, false), (1, true), (1, false), (1, false), (2, false), (2, false)]
            .iter()
            .enumerate()
        {
            let t = 100 * i as u64;
            rt.process_record(&record(*src_ip, i as u32, t, (!dropped).then_some(t + 10), 0));
        }
        rt.finish();
        let rs = rt.collect();
        let r3 = rs.table("R3").unwrap();
        // Only flow A appears (inner join: flow B has no drop row).
        assert_eq!(r3.rows.len(), 1);
        let ratio = r3.rows[0].values[0].as_f64();
        assert!((ratio - 0.25).abs() < 1e-12, "ratio = {ratio}");
    }

    #[test]
    fn composition_streams_through() {
        let src = "R1 = SELECT pkt_uniq, SUM(tout-tin) GROUPBY pkt_uniq\nR2 = SELECT 5tuple FROM R1 GROUPBY 5tuple WHERE SUM(tout-tin) > L\n";
        let mut rt = runtime(src);
        // One packet with 2 ms total latency (> L = 1 ms), one with 1 µs.
        rt.process_record(&record(1, 1, 0, Some(2_000_000), 0));
        rt.process_record(&record(2, 2, 0, Some(1_000), 0));
        rt.finish();
        let rs = rt.collect();
        let r2 = rs.table("R2").unwrap();
        assert_eq!(r2.rows.len(), 1, "only the slow packet's flow qualifies");
        let srcip = r2.rows[0].values[r2.schema.index_of("srcip").unwrap()].as_i64();
        assert_eq!(srcip, i64::from(u32::from(Ipv4Addr::new(10, 0, 0, 1))));
    }

    #[test]
    fn capture_limit_bounds_rows_but_counts_all() {
        let prog = lang_compile("SELECT srcip FROM T", &fig2::default_params()).unwrap();
        let opts = CompileOptions {
            capture_limit: 5,
            ..Default::default()
        };
        let mut rt = Runtime::new(compile_program(prog, opts).unwrap());
        for i in 0..20u32 {
            rt.process_record(&record(1, i, 0, Some(10), 0));
        }
        rt.finish();
        let rs = rt.collect();
        assert_eq!(rs.tables[0].rows.len(), 5);
        assert_eq!(rs.tables[0].total_matched, 20);
    }

    #[test]
    fn store_stats_expose_evictions() {
        let prog = lang_compile("SELECT COUNT GROUPBY srcip", &fig2::default_params()).unwrap();
        let opts = CompileOptions {
            cache_pairs: 2,
            ways: 0, // fully associative, 2 entries
            ..Default::default()
        };
        let mut rt = Runtime::new(compile_program(prog, opts).unwrap());
        for i in 0..30u32 {
            rt.process_record(&record((i % 3) as u8 + 1, i, u64::from(i), Some(u64::from(i) + 1), 0));
        }
        rt.finish();
        let stats = rt.store_stats(0).unwrap();
        assert!(stats.evictions > 0);
        assert_eq!(stats.packets, 30);
        // Counts remain exact despite churn.
        let rs = rt.collect();
        let t = &rs.tables[0];
        let total: i64 = t
            .rows
            .iter()
            .map(|r| r.values[t.schema.index_of("COUNT").unwrap()].as_i64())
            .sum();
        assert_eq!(total, 30);
    }
}
