//! Tumbling measurement windows.
//!
//! §4 evaluates the non-linear query "over 1-min (instead of 5-min)
//! intervals" — operationally, the monitoring system restarts the
//! aggregation state every window and reports per-window tables. A
//! [`WindowedRuntime`] wraps [`Runtime`] with exactly that behaviour: when a
//! record's observation time crosses the window boundary, caches are
//! flushed, results collected, and the hardware state reset.
//!
//! With the incremental read path the wrapper is a true *continuous* query:
//! [`WindowedRuntime::poll_closed`] streams each window's table the moment
//! the window closes (instead of at drain), and
//! [`WindowedRuntime::poll_current`] reads the open window mid-flight
//! through [`Runtime::poll_results`] without perturbing it.

use crate::compiler::CompiledProgram;
use crate::result::ResultSet;
use crate::runtime::Runtime;
use perfq_packet::Nanos;
use perfq_switch::QueueRecord;

/// One completed window's results.
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// Window start (inclusive).
    pub start: Nanos,
    /// Window end (exclusive).
    pub end: Nanos,
    /// Records processed in this window.
    pub records: u64,
    /// Final tables of the window.
    pub results: ResultSet,
}

/// A runtime restarted on fixed time boundaries.
#[derive(Debug)]
pub struct WindowedRuntime {
    compiled: CompiledProgram,
    window: Nanos,
    current: Runtime,
    window_start: Nanos,
    completed: Vec<WindowResult>,
    /// Emission cursor for [`WindowedRuntime::poll_closed`]: windows below
    /// this index have already been streamed to a sink.
    emitted: usize,
}

impl WindowedRuntime {
    /// Create with a window length.
    ///
    /// # Panics
    /// Panics when the window is zero.
    #[must_use]
    pub fn new(compiled: CompiledProgram, window: Nanos) -> Self {
        assert!(window > Nanos::ZERO, "window must be positive");
        let current = Runtime::new(compiled.clone());
        WindowedRuntime {
            compiled,
            window,
            current,
            window_start: Nanos::ZERO,
            completed: Vec::new(),
            emitted: 0,
        }
    }

    fn window_end(&self) -> Nanos {
        self.window_start + self.window
    }

    fn roll(&mut self) {
        let mut finished = std::mem::replace(&mut self.current, Runtime::new(self.compiled.clone()));
        finished.finish();
        self.completed.push(WindowResult {
            start: self.window_start,
            end: self.window_end(),
            records: finished.records(),
            results: finished.collect(),
        });
        self.window_start = self.window_end();
    }

    /// Process a record, rolling windows as its observation time requires.
    /// Records must arrive in non-decreasing observation-time order, which
    /// the network's record stream provides.
    pub fn process_record(&mut self, rec: &QueueRecord) {
        let at = rec.observed_at();
        while at >= self.window_end() {
            self.roll();
        }
        self.current.process_record(rec);
    }

    /// Process a batch of records (windows roll per record, exactly as in
    /// the record-at-a-time path).
    pub fn process_batch(&mut self, recs: &[QueueRecord]) {
        for rec in recs {
            self.process_record(rec);
        }
    }

    /// Close the final (possibly partial) window and return all windows.
    #[must_use]
    pub fn finish(mut self) -> Vec<WindowResult> {
        if self.current.records() > 0 {
            self.roll();
        }
        self.completed
    }

    /// Windows completed so far (without closing the current one).
    #[must_use]
    pub fn completed(&self) -> &[WindowResult] {
        &self.completed
    }

    /// Stream every window that closed since the previous `poll_closed` to
    /// `sink`, in window order, and return how many were emitted. The
    /// continuous-query read path: called between batches, each window's
    /// table leaves the system the moment the window rolls instead of
    /// waiting for [`WindowedRuntime::finish`] (which still returns every
    /// window — emission never consumes).
    pub fn poll_closed(&mut self, mut sink: impl FnMut(&WindowResult)) -> usize {
        let fresh = &self.completed[self.emitted..];
        for w in fresh {
            sink(w);
        }
        self.emitted = self.completed.len();
        fresh.len()
    }

    /// Poll the **open** window's current tables without closing it — the
    /// windowed face of [`Runtime::poll_results`]: equals what the window
    /// would report if it rolled at this instant, while leaving its caches
    /// resident and its eventual roll untouched.
    #[must_use]
    pub fn poll_current(&mut self) -> ResultSet {
        self.current.poll_results()
    }

    /// Start of the open window (inclusive).
    #[must_use]
    pub fn current_start(&self) -> Nanos {
        self.window_start
    }

    /// Records processed by the open window so far.
    #[must_use]
    pub fn current_records(&self) -> u64 {
        self.current.records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile_program, CompileOptions};
    use perfq_lang::{compile as lang_compile, fig2};
    use perfq_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn compiled(src: &str, opts: CompileOptions) -> CompiledProgram {
        compile_program(lang_compile(src, &fig2::default_params()).unwrap(), opts).unwrap()
    }

    fn rec(src_last: u8, uniq: u64, t: u64) -> QueueRecord {
        QueueRecord {
            packet: PacketBuilder::tcp()
                .src(Ipv4Addr::new(10, 0, 0, src_last), 1000)
                .dst(Ipv4Addr::new(172, 16, 0, 1), 80)
                .payload_len(100)
                .uniq(uniq)
                .build(),
            qid: 1,
            tin: Nanos(t),
            tout: Nanos(t + 10),
            qsize: 0,
            qout: 0,
            path: 0,
        }
    }

    #[test]
    fn records_split_across_windows() {
        let c = compiled("SELECT COUNT GROUPBY srcip", CompileOptions::default());
        let mut wr = WindowedRuntime::new(c, Nanos::from_millis(1));
        // 30 records at 100 µs spacing: 3 windows of 10.
        for i in 0..30u64 {
            wr.process_record(&rec(1, i, i * 100_000));
        }
        let windows = wr.finish();
        assert_eq!(windows.len(), 3);
        for w in &windows {
            assert_eq!(w.records, 10);
            let t = &w.results.tables[0];
            let count_idx = t.schema.index_of("COUNT").unwrap();
            assert_eq!(t.rows[0].values[count_idx].as_i64(), 10);
        }
        assert_eq!(windows[1].start, Nanos::from_millis(1));
        assert_eq!(windows[1].end, Nanos::from_millis(2));
    }

    #[test]
    fn empty_windows_are_skipped_rolling_forward() {
        let c = compiled("SELECT COUNT GROUPBY srcip", CompileOptions::default());
        let mut wr = WindowedRuntime::new(c, Nanos::from_millis(1));
        wr.process_record(&rec(1, 1, 0));
        // A long quiet gap: jumps several windows at once.
        wr.process_record(&rec(1, 2, 5_500_000));
        let windows = wr.finish();
        // First window has the first record; the intermediate empty windows
        // are still emitted (rolled through), the final partial has one.
        assert_eq!(windows.len(), 6);
        assert_eq!(windows[0].records, 1);
        assert!(windows[1..5].iter().all(|w| w.records == 0));
        assert_eq!(windows[5].records, 1);
    }

    #[test]
    fn windowed_accuracy_beats_full_run_under_pressure() {
        // The Fig. 6 mechanism as an API-level property: windows reset the
        // cache, so fewer keys get re-inserted per window.
        let opts = CompileOptions {
            cache_pairs: 8,
            ways: 0,
            ..Default::default()
        };
        let c = compiled(fig2::TCP_NON_MONOTONIC.source, opts);
        let records: Vec<QueueRecord> = (0..4_000u64)
            .map(|i| rec((i % 24) as u8, i, i * 1_000))
            .collect();

        // Full run.
        let mut full = Runtime::new(c.clone());
        for r in &records {
            full.process_record(r);
        }
        full.finish();
        let acc_full = full.collect().tables[0].accuracy();

        // Windowed runs (8 windows), key-weighted accuracy.
        let mut wr = WindowedRuntime::new(c, Nanos(500_000));
        for r in &records {
            wr.process_record(r);
        }
        let windows = wr.finish();
        let (mut valid, mut total) = (0usize, 0usize);
        for w in &windows {
            let t = &w.results.tables[0];
            valid += t.rows.iter().filter(|r| r.valid).count();
            total += t.rows.len();
        }
        let acc_windowed = valid as f64 / total as f64;
        assert!(
            acc_windowed >= acc_full,
            "windowed {acc_windowed} vs full {acc_full}"
        );
    }

    #[test]
    fn windows_stream_as_they_close_and_polls_do_not_perturb() {
        let c = compiled("SELECT COUNT GROUPBY srcip", CompileOptions::default());
        // Reference: a never-polled replay.
        let mut plain = WindowedRuntime::new(c.clone(), Nanos::from_millis(1));
        for i in 0..30u64 {
            plain.process_record(&rec(1, i, i * 100_000));
        }
        let reference = plain.finish();

        // Polled replay: stream closed windows and read the open window
        // after every record.
        let mut wr = WindowedRuntime::new(c, Nanos::from_millis(1));
        let mut streamed: Vec<WindowResult> = Vec::new();
        for i in 0..30u64 {
            wr.process_record(&rec(1, i, i * 100_000));
            wr.poll_closed(|w| streamed.push(w.clone()));
            let live = wr.poll_current();
            let t = &live.tables[0];
            let idx = t.schema.index_of("COUNT").unwrap();
            assert_eq!(
                t.rows.iter().map(|r| r.values[idx].as_i64()).sum::<i64>(),
                wr.current_records() as i64,
                "open-window poll must reflect exactly the records ingested"
            );
        }
        // Two closed windows streamed mid-run; the drain still returns all
        // three, byte-identical to the never-polled replay.
        assert_eq!(streamed.len(), 2);
        let drained = wr.finish();
        assert_eq!(drained.len(), reference.len());
        for (a, b) in drained.iter().zip(&reference) {
            assert_eq!((a.start, a.end, a.records), (b.start, b.end, b.records));
            assert_eq!(a.results, b.results);
        }
        for (s, r) in streamed.iter().zip(&reference) {
            assert_eq!(s.results, r.results);
        }
    }

    #[test]
    fn linear_counts_are_exact_summed_over_windows() {
        let c = compiled("SELECT COUNT GROUPBY srcip", CompileOptions::default());
        let mut wr = WindowedRuntime::new(c, Nanos(777_777));
        let n = 5_000u64;
        for i in 0..n {
            wr.process_record(&rec((i % 5) as u8, i, i * 531));
        }
        let windows = wr.finish();
        let mut total = 0i64;
        for w in &windows {
            let t = &w.results.tables[0];
            let idx = t.schema.index_of("COUNT").unwrap();
            total += t.rows.iter().map(|r| r.values[idx].as_i64()).sum::<i64>();
        }
        assert_eq!(total as u64, n);
    }
}
