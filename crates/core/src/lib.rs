//! # perfq-core
//!
//! The system glue of the `perfq` reproduction: the query **compiler** the
//! paper leaves as future work, the **runtime** that executes compiled
//! queries on the simulated switch primitives, and the ground-truth
//! **oracle** used for validation and accuracy measurement.
//!
//! ```text
//!   query text ──perfq-lang──▶ ResolvedProgram
//!                                   │ compiler::compile_program
//!                                   ▼
//!                            CompiledProgram ── per GROUPBY: StorePlan
//!                                   │              (geometry, merge mode,
//!                                   │               ALU audit, key bits)
//!                 ┌─────────────────┴──────────────┐
//!                 ▼                                ▼
//!             Runtime (split KV stores)        Oracle (exact maps)
//!                 │ process_record(...)            │
//!                 ▼                                ▼
//!             ResultSet  ◀──── diff/accuracy ────  ResultSet
//! ```
//!
//! * [`foldops`] — the merge engine: ΠA-matrix correction and window replay
//!   for linear folds, epochs for non-linear ones;
//! * [`compiler`] — physical planning + stateful-ALU feasibility audit;
//! * [`runtime`] — the streaming dataplane and result collector;
//! * [`oracle`] — exact evaluation with unbounded state;
//! * [`result`] — final tables with per-key validity.
//!
//! # Example
//!
//! ```
//! use perfq_core::{compile_query, Runtime, Oracle};
//! use perfq_lang::fig2;
//!
//! let compiled = compile_query(
//!     "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip",
//!     &fig2::default_params(),
//!     Default::default(),
//! ).unwrap();
//! let mut rt = Runtime::new(compiled);
//! // … feed rt.process_record(record) from a Network run …
//! rt.finish();
//! let results = rt.collect();
//! assert_eq!(results.tables.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiler;
pub mod foldops;
pub mod oracle;
pub mod result;
pub mod runtime;
pub mod windows;

pub use compiler::{compile_program, CompileError, CompileOptions, CompiledProgram, StorePlan};
pub use foldops::{FoldOps, FoldState};
pub use oracle::Oracle;
pub use result::{diff_tables, ResultRow, ResultSet, ResultTable};
pub use runtime::Runtime;
pub use windows::{WindowResult, WindowedRuntime};

use perfq_lang::{LangError, Value};
use std::collections::HashMap;

/// Errors from the full text → hardware pipeline.
#[derive(Debug)]
pub enum PerfqError {
    /// Front-end (lex/parse/resolve) failure.
    Lang(LangError),
    /// Physical planning failure.
    Compile(CompileError),
}

impl std::fmt::Display for PerfqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfqError::Lang(e) => write!(f, "{e}"),
            PerfqError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PerfqError {}

impl From<LangError> for PerfqError {
    fn from(e: LangError) -> Self {
        PerfqError::Lang(e)
    }
}

impl From<CompileError> for PerfqError {
    fn from(e: CompileError) -> Self {
        PerfqError::Compile(e)
    }
}

/// Compile query text straight to a hardware configuration.
pub fn compile_query(
    source: &str,
    params: &HashMap<String, Value>,
    options: CompileOptions,
) -> Result<CompiledProgram, PerfqError> {
    let program = perfq_lang::compile(source, params)?;
    Ok(compile_program(program, options)?)
}
