//! # perfq-core
//!
//! The system glue of the `perfq` reproduction: the query **compiler** the
//! paper leaves as future work, the **runtime** that executes compiled
//! queries on the simulated switch primitives, and the ground-truth
//! **oracle** used for validation and accuracy measurement.
//!
//! ```text
//!   query text ──perfq-lang──▶ ResolvedProgram
//!                                   │ compiler::compile_program
//!                                   ▼
//!                            CompiledProgram ── per GROUPBY: StorePlan
//!                                   │              (geometry, merge mode,
//!                                   │               ALU audit, key bits)
//!                 ┌─────────────────┴──────────────┐
//!                 ▼                                ▼
//!             Runtime (split KV stores)        Oracle (exact maps)
//!                 │ process_record(...)            │
//!                 ▼                                ▼
//!             ResultSet  ◀──── diff/accuracy ────  ResultSet
//! ```
//!
//! * [`foldops`] — the merge engine: ΠA-matrix correction and window replay
//!   for linear folds, epochs for non-linear ones;
//! * [`compiler`] — physical planning + stateful-ALU feasibility audit;
//! * [`runtime`] — the streaming dataplane and result collector;
//! * [`oracle`] — exact evaluation with unbounded state;
//! * [`result`] — final tables with per-key validity.
//!
//! # Execution engine
//!
//! The per-record path is built for line rate in software: after query
//! compilation the dataplane performs **no allocation and no recursion per
//! record**. The pipeline (MAFIA-style "compile the query to a fixed
//! instruction sequence") is:
//!
//! 1. **Flat plan** — `plan::ExecPlan` flattens the query DAG into one
//!    topologically-ordered node list (definition order *is* topological
//!    order, since queries only read earlier tables). Each record is a
//!    single indexed pass: a node reads its input from the base row or an
//!    upstream node's output slot and writes its own reusable slot.
//!    Collect-only queries (joins and their descendants) are skipped, and
//!    output rows nobody consumes are never materialized (dead-output
//!    elimination).
//! 2. **Expression bytecode** — filters, projections and fold bodies
//!    compile to `perfq_lang::bytecode`: flat postfix programs over an
//!    explicit, reusable value stack, with parameters folded to constants
//!    and the dominant statement shapes (guarded counters, accumulators,
//!    `input CMP const` filters) fused into single stack-free
//!    superinstructions. The tree-walking interpreter in `perfq_lang::ir`
//!    remains the executable specification: the [`Oracle`] uses it, and
//!    differential tests pin the bytecode against it.
//! 3. **Inline keys and state** — group keys build into
//!    `perfq_kvstore::InlineKey` ([i64; 5] inline, heap spill only for
//!    wider keys) and fold state lives in `foldops::StateVec` (two
//!    variables inline in the cache slot), so the per-packet store update
//!    touches no second heap line. The split store probes **once** per
//!    packet: `SramCache::upsert_slot` resolves the key to a `SlotHandle`
//!    and the fold mutates state *through the handle*
//!    (`slot_value_mut`/`touch_slot`), so probe and fold share a single
//!    hash + slot resolution (the fused upsert — the old probe-again-in-a-
//!    closure shape is gone from the hot path).
//! 4. **Merge shortcuts and compiled fold kernels** — additive windowless
//!    folds (COUNT/SUM) carry no merge bookkeeping at all; folds with a
//!    provably constant `A` matrix (EWMA) skip per-packet ΠA extraction and
//!    reconstruct `A^n` once at merge time. One-variable windowless linear
//!    fold bodies additionally compile to a closed-form **constant-A
//!    kernel** in [`foldops`]: the per-packet update becomes `s' = a·s + b`
//!    evaluated directly from the decomposed body (no bytecode dispatch, no
//!    scratch borrow), and the §3.2 merge correction becomes one
//!    `aⁿ`-scaling — the kernel's legality is decided structurally at
//!    compile time and pinned bit-identical to the bytecode path.
//! 5. **Batching and column pruning** — [`Runtime::process_batch`] (and
//!    `Network::run_batched` upstream) feed records in slices; only the
//!    base columns the compiled program reads are materialized per record
//!    (`QueueRecord::write_row_masked`). Batches execute node-at-a-time
//!    over survivor bitmasks — see *Vectorized execution* below.
//!
//! `BENCH_pipeline.json` at the repository root records the measured
//! speedup of this engine over the seed tree-walking runtime
//! (2.2–3.2× records/sec on the Fig. 2 benchmark queries);
//! `scripts/bench_smoke.sh` guards it against regression.
//!
//! # Hot-path anatomy
//!
//! Where a record's nanoseconds actually go, measured on the bench box by
//! `profile_runtime --csv` (stage decomposition; per-flow counter query
//! unless noted — see `crates/bench/src/bin/profile_runtime.rs`):
//!
//! ```text
//!   stage (one record)                                  ~ns/record
//!   ────────────────────────────────────────────────────────────────
//!   write_row        pruned-column materialize               21
//!   + key build      row + group-key build + hash            62  (cum.)
//!   store probe      SramCache::upsert_slot                  37
//!   fold             += through the SlotHandle                4
//!   ring handoff     SPSC encode + publish + decode          47  (sharded only)
//!   ────────────────────────────────────────────────────────────────
//!   whole pipeline   per-flow counters                      164  (6.1 M rec/s)
//!   whole pipeline   latency EWMA                           210  (4.8 M rec/s)
//! ```
//!
//! Three consequences shape the engine. **The probe dominates the store**
//! (37 ns probe vs 4 ns fold), which is why the vectorized GroupBy sweep
//! coalesces equal-key *runs* — one `observe_run_first` probe per run,
//! `observe_run_next`/`observe_run_folded` through the already-resolved
//! handle for the rest, and additive folds pre-reduce the run to a scalar
//! before one `touch_slot(n)`. On locally-sorted traffic (mean run ≈ 5,
//! the shape RSS steering + bursty flows produce) this wins 1.17–1.25×
//! (`query_runtime_bursty` guards the ratio same-run); on hash-ordered
//! traffic (run ≈ 1.4) the run tracker costs nothing measurable.
//! **Key build rivals the probe** (~40 ns of the 62), bounding what any
//! store-side work can save — the multi-query CSE that builds each unique
//! key once per record attacks this term, not the store. **The ring
//! handoff is priced like a second probe** (47 ns), so the sharded
//! dataplane only pays it when a second core can absorb it — see
//! *Sharded execution* below and the `sharded_note` in
//! `BENCH_pipeline.json` for the single-core caveat.
//!
//! # Vectorized execution
//!
//! The batched entry points ([`Runtime::process_batch`],
//! [`MultiRuntime::process_batch`]) do not loop `process_record`: they
//! execute **node-at-a-time over a chunk of records**, steered by survivor
//! bitmasks, so each plan node's code (filter compare loop, projection
//! bytecode, store probe) stays hot in the instruction stream while it
//! sweeps many records:
//!
//! ```text
//!   chunk of ≤16 QueueRecords
//!        │  write_row_masked per lane (pruned columns only)
//!        ▼
//!   lane rows ─────────────▶ u64 input mask   0b0110…1
//!        │                        │ bit i = lane i live for this node
//!        ▼                        ▼
//!   per node, in topological order: sweep set bits only
//!        ├─ filter verdict per lane (fused, or a precomputed shared mask)
//!        ├─ Project: eval output cols into the node's lane slots
//!        └─ GroupBy: key build + one store upsert per surviving bit
//!        ▼
//!   node's survivor mask = downstream node's input mask
//! ```
//!
//! A chunk is at most one mask word (64 lanes) but deliberately smaller
//! (16): the chunk's materialized rows must stay L1-resident across the
//! materialize → per-node store sweeps, or the random store probes evict
//! them and the batching win inverts. A node's own filter fuses into its
//! sweep — the verdict clears the lane's bit and the fold runs in the same
//! row visit, so survivor masks cost no second pass over the chunk — while
//! the multi-query shared prefix evaluates each *shared* filter once into
//! a per-chunk verdict mask (`plan::Filter::survivors`) that every
//! consuming program ANDs in for free (shared group keys likewise build
//! once per lane under the union of their consumers' masks). Nodes read
//! their input from the base lanes or the upstream node's flat output
//! buffer and are skipped outright when their input mask is empty.
//!
//! Two contracts pin the path. **Byte-identity:** every store and capture
//! buffer belongs to exactly one node, set bits are visited in ascending
//! lane order (= record order), and a node only reads lanes its upstream
//! wrote — so hit/miss/eviction streams, epochs and capture contents are
//! bit-identical to record-at-a-time processing at *any* chunking
//! (`tests/batch_equivalence.rs`: ragged lengths, all-pass/all-drop
//! batches, epoch-straddling batches). **Zero allocation:** lane rows,
//! per-node output lanes and the mask words are pooled on the runtime, so
//! a warmed vectorized replay allocates nothing
//! (`tests/alloc_discipline.rs`).
//!
//! # Sharded execution
//!
//! [`ShardedRuntime`] scales the engine past one core by key-hash
//! partitioning the record stream: each of N worker shards owns a private
//! flat plan and its own kvstore shard, fed over fixed-capacity **lock-free**
//! SPSC rings — word-encoded records in atomic slots, batch publication,
//! a spin/yield/park backoff ladder, no mutex anywhere on the data path
//! (`perfq_switch::spsc`; `Network::run_sharded` is the producer half) — and
//! the drain merges per-shard fold state through the §3.2 merge machinery —
//! the same algebra that reconciles one flow observed at many switches
//! reconciles one key processed on many cores. The shard is a **pure
//! function of the group key** ([`ShardSpec`]): a key never lands on two
//! shards, so every fold class — additive, constant-A/EWMA, windowed with
//! replay aux, non-linear epoch folds — streams exactly as it would in the
//! single-stream engine. [`ShardSpec::is_exact`] audits this statically
//! (all Fig. 2 programs pass); the differential suite
//! (`tests/shard_equivalence.rs`) pins sharded output bit-identical to
//! [`Runtime::process_record`] and [`Runtime::process_batch`] at 1/2/4/8
//! shards, and a property suite fuzzes the partitioning invariant. The one
//! stream-order exception is bounded capture buffers — when a selection
//! overflows its capture limit the retained sample is shard-biased, though
//! totals and row counts stay exact (see [`sharded`] for the full caveat).
//!
//! # Multi-query execution
//!
//! The paper's §3.3 prices **one** fixed slice of switch SRAM that every
//! concurrently-installed query shares — so concurrent queries are the
//! normal case, not K independent deployments. [`MultiRuntime`] installs
//! several compiled programs behind a single ingest pass: each record's
//! base row materializes **once**, with the union of the programs' pruned
//! column masks, and is dispatched to every program's flat plan — K
//! concurrent Fig. 2 queries cost one trip through the network event loop
//! instead of K full replays (the `multi_query` bench group guards the
//! speedup). On the provisioning side, [`provision`] runs
//! `perfq_kvstore::CachePlanner` over the programs' reported key/state
//! widths and rewrites every store's geometry to its slice of the budget;
//! [`MultiSharded`] extends both to the sharded dataplane, sizing each
//! shard's cache at `1/N` of its program's slice so total area stays
//! constant as the dataplane scales out. Execution is byte-identical to K
//! independent sequential replays with the same geometries
//! (`tests/multi_query_equivalence.rs` pins single-stream, batched and
//! 1/2/4/8-shard paths; `tests/area_plan.rs` fuzzes the planner's
//! never-over-budget invariant).
//!
//! # Cross-query sharing
//!
//! Installed programs overlap: the paper's own Fig. 2 set keys the 5-tuple
//! five times, filters `proto == TCP` twice, and repeats the §4 running
//! example (`SELECT COUNT GROUPBY 5tuple`) verbatim inside the loss-rate
//! program. [`MultiRuntime`]/[`MultiSharded`] therefore run an install-time
//! sharing pass — fingerprint with `perfq_lang::fingerprint`, confirm
//! structurally + physically, rewrite the plans — that (a) evaluates each
//! unique base filter and builds each unique group key **once per record**
//! (the shared execution prefix), and (b) binds structurally-identical
//! stores to **one** physical store, eliding the duplicates from the
//! streaming pass and substituting the owner's finished store at drain.
//! Two stores may legally dedup only when their input chains, filters, key
//! tuples and fold semantics are identical *and* their physical
//! configurations (geometry, eviction policy, hash seed) match — which
//! makes sharing byte-identical to unshared execution for every fold
//! class, eviction for eviction. Under [`provision`], deduplicated stores
//! are also charged to the SRAM budget once and the reclaimed bits grow
//! every physical cache. See [`multi`] for the full legality rule and
//! [`multi::SharingReport`] for what a given install shared.
//!
//! # Incremental reads
//!
//! The paper's collection story — drain the backing store at the end of
//! the measurement window — leaves the operator blind *during* the window.
//! The incremental read path fixes that without stopping the world:
//! [`Runtime::poll_results`] returns, between batches, exactly what
//! `finish()` + `collect()` would return on a clone of the live runtime,
//! while caches stay resident and ingest continues ([`MultiRuntime::poll`],
//! [`MultiSharded::poll`] and [`ShardedRuntime::poll_results`] are the
//! multi-program and sharded faces; a sharded poll quiesces only the
//! involved dataplanes between batches and resumes them with caches
//! intact). Under the hood each store copies its backing table into a
//! pooled `perfq_kvstore::StoreSnapshot` frame and absorbs the
//! cache-resident pairs through the normal eviction algebra — O(distinct
//! keys) per poll, allocation-free once the frame is warm — so the polled
//! frame is *the* store state, not an approximation. On top of the frames,
//! [`DeltaCursor`] turns consecutive polls into per-epoch **deltas**
//! ([`Runtime::poll_delta`] streams only rows that changed since the last
//! poll through the sink idiom), and [`WindowedRuntime::poll_closed`]
//! streams each tumbling window the moment it closes — the continuous-query
//! mode the drain-at-end API could not express. Polling is pinned
//! non-perturbing by `tests/poll_equivalence.rs`: any poll schedule's final
//! drain is byte-identical to a never-polled replay, and every mid-stream
//! poll equals a fresh replay of the prefix.
//!
//! # Dynamic lifecycle
//!
//! The paper's queries "are installed at run time" — so the deployment is
//! mutable while records flow. [`MultiRuntime::install`] admits one more
//! compiled program into a live deployment and [`MultiRuntime::uninstall`]
//! retires one by its stable install id, returning its final results
//! (the sharded twins [`MultiSharded::install`] /
//! [`MultiSharded::uninstall`] pause only the touched workers, drain their
//! queues, and resume). Under a budget both re-run the
//! `perfq_kvstore::CachePlanner` over the surviving set and **live-migrate**
//! every resident store to its new slice between batches
//! (`SplitStore::migrate_geometry`: rehash cache-resident pairs,
//! timestamps intact, overflow absorbed through the normal merge path) —
//! residents shrink to admit a newcomer and regrow when one leaves, with
//! the backing store (the truth, §3.2) untouched throughout. The sharing
//! analysis re-runs incrementally: a program installed at the same
//! *epoch* (deployment record count) as a structurally-identical resident
//! adopts its deduplicated store — equal epochs prove the shared store
//! holds exactly the state the newcomer's private store would — while
//! cross-epoch twins stay private; uninstalling a store's owner promotes
//! the first surviving alias to owner (the physical store's state moves
//! with it), and a composed alias pair whose chains a replan pulls apart
//! is *repaired* by cloning the shared state back into the alias. The
//! contract, pinned by `tests/query_lifecycle.rs` differentially against
//! restart-from-scratch deployments at every install event (and by
//! `tests/store_migration.rs` property-testing the migration itself): any
//! interleaving of installs and uninstalls is byte-identical to a fresh
//! deployment observing the suffix each installed query actually saw.
//!
//! # Example
//!
//! ```
//! use perfq_core::{compile_query, Runtime, Oracle};
//! use perfq_lang::fig2;
//!
//! let compiled = compile_query(
//!     "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip",
//!     &fig2::default_params(),
//!     Default::default(),
//! ).unwrap();
//! let mut rt = Runtime::new(compiled);
//! // … feed rt.process_record(record) from a Network run …
//! rt.finish();
//! let results = rt.collect();
//! assert_eq!(results.tables.len(), 1);
//! ```

//!
//! For the paper-section → crate/file map of the whole workspace, see
//! `ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiler;
pub mod durable;
pub mod foldops;
pub mod multi;
pub mod oracle;
mod plan;
pub mod result;
pub mod runtime;
pub mod sharded;
pub mod windows;

pub use compiler::{compile_program, CompileError, CompileOptions, CompiledProgram, StorePlan};
pub use durable::{decode_results, encode_results, read_retired, write_retired, Durability};
pub use foldops::{FoldOps, FoldState};
pub use multi::{
    demand_of, provision, shard_programs, MultiRuntime, MultiSharded, SharedSlot, SharedStore,
    SharingReport,
};
pub use oracle::Oracle;
pub use result::{diff_tables, DeltaCursor, DeltaRow, ResultRow, ResultSet, ResultTable};
pub use runtime::{LifecycleError, Runtime};
pub use sharded::{ShardRouter, ShardSpec, ShardedRuntime};
pub use windows::{WindowResult, WindowedRuntime};

use perfq_lang::{LangError, Value};
use std::collections::HashMap;

/// Errors from the full text → hardware pipeline.
#[derive(Debug)]
pub enum PerfqError {
    /// Front-end (lex/parse/resolve) failure.
    Lang(LangError),
    /// Physical planning failure.
    Compile(CompileError),
}

impl std::fmt::Display for PerfqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfqError::Lang(e) => write!(f, "{e}"),
            PerfqError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PerfqError {}

impl From<LangError> for PerfqError {
    fn from(e: LangError) -> Self {
        PerfqError::Lang(e)
    }
}

impl From<CompileError> for PerfqError {
    fn from(e: CompileError) -> Self {
        PerfqError::Compile(e)
    }
}

/// Compile query text straight to a hardware configuration.
pub fn compile_query(
    source: &str,
    params: &HashMap<String, Value>,
    options: CompileOptions,
) -> Result<CompiledProgram, PerfqError> {
    let program = perfq_lang::compile(source, params)?;
    Ok(compile_program(program, options)?)
}
