//! Fig. 2 — the example-query table.
//!
//! For each of the paper's seven example queries, verbatim from Fig. 2:
//!
//! 1. parse + resolve the query text;
//! 2. report the **derived** linear-in-state verdict next to the paper's
//!    printed column (they must agree);
//! 3. audit the fold against the Banzai-like stateful-ALU budget (§3.3);
//! 4. execute end-to-end — trace → network → compiled runtime — and compare
//!    against the ground-truth oracle (exact for linear queries; accuracy
//!    reported for the non-linear one).

use perfq_bench::Table;
use perfq_core::{compile_program, CompileOptions, Oracle, Runtime};
use perfq_lang::fig2;
use perfq_switch::{AluSpec, Network, NetworkConfig};
use perfq_trace::{SyntheticTrace, TraceConfig};

fn main() {
    println!("Fig. 2 reproduction: example queries, linearity verdicts, and");
    println!("hardware-vs-oracle agreement\n");

    // A short trace with TCP dynamics, run through a deliberately
    // under-provisioned switch (slow ports) so records carry real queueing
    // delays, occupancy, and drops — the phenomena the queries measure.
    let trace_cfg = TraceConfig {
        duration: perfq_packet::Nanos::from_secs(1),
        ..TraceConfig::test_small(perfq_bench::seed())
    };
    let mut net = Network::new(NetworkConfig {
        switch: perfq_switch::SwitchConfig {
            ports: 1,
            port_rate_bps: 80e6, // one oversubscribed port: queueing + drops
            queue_capacity: 64,
        },
        ..Default::default()
    });
    let records = net.run_collect(SyntheticTrace::new(trace_cfg));
    println!(
        "workload: {} records through an oversubscribed switch port ({} drops)\n",
        records.len(),
        net.total_drops()
    );

    let table = Table::new(&[32, 8, 8, 8, 10, 24]);
    table.row(&[
        "query".into(),
        "paper".into(),
        "derived".into(),
        "alu".into(),
        "keys".into(),
        "vs oracle".into(),
    ]);
    table.sep();

    let mut all_ok = true;
    for q in fig2::ALL {
        let prog = match fig2::compile(q) {
            Ok(p) => p,
            Err(e) => {
                println!("{}: COMPILE FAILED: {}", q.name, e);
                all_ok = false;
                continue;
            }
        };
        let derived = fig2::derived_linear(&prog, q).expect("verdict query aggregates");
        let verdict_match = derived == q.paper_linear;
        all_ok &= verdict_match;

        let compiled = compile_program(prog, CompileOptions::default()).expect("plans");
        let alu_ok = compiled
            .alu
            .iter()
            .flatten()
            .all(|r| r.is_ok());
        let mut rt = Runtime::new(compiled.clone());
        let mut oracle = Oracle::new(compiled);
        for r in &records {
            rt.process_record(r);
            oracle.process_record(r);
        }
        rt.finish();
        let got = rt.collect();
        let want = oracle.collect();

        let vq = q.verdict_query;
        let (gt, wt) = (got.table(vq).expect("table"), want.table(vq).expect("table"));
        let comparison = if q.paper_linear {
            match perfq_core::diff_tables(gt, wt, 1e-9) {
                None => "exact match".to_string(),
                Some(d) => {
                    all_ok = false;
                    format!("MISMATCH: {d}")
                }
            }
        } else {
            format!("{:.1}% keys valid", gt.accuracy() * 100.0)
        };
        table.row(&[
            q.name.into(),
            if q.paper_linear { "Yes" } else { "No" }.into(),
            if derived { "Yes" } else { "No" }.into(),
            if alu_ok { "fits" } else { "over" }.into(),
            format!("{}", gt.rows.len()),
            comparison,
        ]);
    }
    table.sep();

    // The ALU budget used for the audit.
    let spec = AluSpec::banzai();
    println!(
        "\nALU budget: {} state regs, {} ops/cycle, depth-{} predication, \
         multiplier: {}, {}-packet window",
        spec.max_state_vars, spec.max_ops, spec.max_branch_depth, spec.has_multiplier, spec.max_window
    );
    println!(
        "\nresult: {}",
        if all_ok {
            "all derived verdicts match the paper's table; linear queries \
             reproduce the oracle exactly"
        } else {
            "DISCREPANCIES FOUND (see above)"
        }
    );
    std::process::exit(i32::from(!all_ok));
}
