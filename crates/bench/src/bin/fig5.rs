//! Fig. 5 — eviction rates for a range of cache sizes.
//!
//! Reproduces both panels of the paper's Fig. 5: the query
//! `SELECT COUNT GROUPBY 5tuple` runs over the CAIDA-like trace against
//! three cache geometries (hash table `m=1`, 8-way set-associative, fully
//! associative) across a sweep of cache capacities; we report
//!
//! * evictions as a **percentage of packets** (left panel — independent of
//!   line rate), and
//! * the implied **backing-store write rate** under the paper's typical
//!   datacenter conditions, 22.6 M average-sized packets/s (right panel).
//!
//! The paper's trace has ~3.8 M flows and sweeps 2^16–2^21 pairs
//! (8–256 Mbit at 128 bits/pair); our default trace is ~10× smaller, so the
//! sweep covers 2^13–2^18 pairs — the same cache-capacity : flow-count
//! ratios. Run with `PERFQ_SCALE=1 cargo run --release -p perfq-bench --bin
//! fig5` (smaller scales shrink the trace and sweep proportionally).

use perfq_bench::{si_fmt, KeyTrace, Table};
use perfq_kvstore::area::{bits_to_mbit, sram_bits_for_pairs, WorkloadModel, PAIR_BITS};
use perfq_kvstore::{CacheGeometry, CounterOps, EvictionPolicy, SplitStore};
use perfq_packet::Nanos;

fn eviction_fraction(trace: &KeyTrace, geometry: CacheGeometry) -> f64 {
    let mut store: SplitStore<u128, CounterOps> =
        SplitStore::new(geometry, EvictionPolicy::Lru, 0xf15, CounterOps);
    for (k, t) in trace.keys.iter().zip(&trace.times) {
        store.observe(*k, &(), Nanos(*t));
    }
    store.stats().eviction_fraction()
}

fn main() {
    println!("Fig. 5 reproduction: eviction rate vs cache size (3 geometries)");
    println!("query: SELECT COUNT GROUPBY 5tuple\n");

    let t0 = std::time::Instant::now();
    let trace = KeyTrace::generate();
    println!(
        "workload: {} packets, {} flows, {:.1}s (generated in {:.1?})",
        trace.len(),
        trace.flows,
        trace.duration.as_secs_f64(),
        t0.elapsed()
    );

    // Size the sweep so cache-capacity : flow-count ratios match the paper's
    // sweep against its 3.8 M-flow trace (2^16..2^21 pairs).
    let paper_ratio_smallest = (1u64 << 16) as f64 / 3.8e6;
    let mut base = ((trace.flows as f64 * paper_ratio_smallest).log2().round()) as u32;
    base = base.clamp(6, 20);
    let sizes: Vec<usize> = (0..6).map(|i| 1usize << (base + i)).collect();
    println!(
        "cache sweep: 2^{}..2^{} pairs (paper: 2^16..2^21 on 3.8M flows)\n",
        base,
        base + 5
    );

    let model = WorkloadModel::paper();
    let table = Table::new(&[10, 10, 12, 12, 12, 14]);
    table.row(&[
        "pairs".into(),
        "Mbit".into(),
        "hash %".into(),
        "8-way %".into(),
        "full %".into(),
        "8w writes/s".into(),
    ]);
    table.sep();

    let mut csv = Vec::new();
    for &pairs in &sizes {
        let hash = eviction_fraction(&trace, CacheGeometry::hash_table(pairs));
        let assoc8 = eviction_fraction(&trace, CacheGeometry::set_associative(pairs, 8));
        let full = eviction_fraction(&trace, CacheGeometry::fully_associative(pairs));
        let mbit = bits_to_mbit(sram_bits_for_pairs(pairs as u64, PAIR_BITS));
        let writes = model.evictions_per_sec(assoc8);
        table.row(&[
            format!("{pairs}"),
            format!("{mbit:.1}"),
            format!("{:.3}", hash * 100.0),
            format!("{:.3}", assoc8 * 100.0),
            format!("{:.3}", full * 100.0),
            si_fmt(writes),
        ]);
        csv.push(format!(
            "{pairs},{mbit:.2},{:.6},{:.6},{:.6},{writes:.0}",
            hash, assoc8, full
        ));
    }
    table.sep();

    // The paper's two headline observations.
    let target = sizes[2]; // third point of the sweep ≙ the paper's 32 Mbit
    let assoc8 = eviction_fraction(&trace, CacheGeometry::set_associative(target, 8));
    let full = eviction_fraction(&trace, CacheGeometry::fully_associative(target));
    println!(
        "\nAt the target size ({target} pairs ≙ paper's 32 Mbit point):\n\
         - 8-way eviction rate: {:.2}% (paper: 3.55%)\n\
         - 8-way vs fully-associative gap: {:.2}% vs {:.2}% \
           (paper: within 2% of the optimum)\n\
         - implied backing-store writes at 22.6M pkt/s: {:.0}K/s (paper: ~802K/s)",
        assoc8 * 100.0,
        assoc8 * 100.0,
        full * 100.0,
        model.evictions_per_sec(assoc8) / 1e3,
    );

    let path = perfq_bench::write_csv(
        "fig5.csv",
        "pairs,mbit,hash_frac,assoc8_frac,full_frac,writes_per_sec_8way",
        &csv,
    );
    println!("\ncsv: {}", path.display());
}
