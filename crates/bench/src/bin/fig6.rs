//! Fig. 6 — accuracy for a query that is not linear-in-state.
//!
//! The paper runs the non-linear "TCP non-monotonic" style aggregation on
//! 8-way associative caches of varying size and reports the fraction of
//! *valid* keys — keys never evicted-and-reinserted, for which a single
//! correct value exists. §4: "the accuracy is higher if we run the query
//! over a shorter time interval": a 1-minute run leaves fewer chances for a
//! key to be re-inserted than a 5-minute run (paper: 74% → 84% at 32 Mbit).
//!
//! We therefore measure single query runs over prefixes of the trace in the
//! paper's 1:3:5 duration ratio (scaled to the trace length: 12 s / 36 s /
//! 60 s on the default 60 s workload).

use perfq_bench::{KeyTrace, Table};
use perfq_kvstore::area::{bits_to_mbit, sram_bits_for_pairs, PAIR_BITS};
use perfq_kvstore::{CacheGeometry, EvictionPolicy, MaxOps, SplitStore};
use perfq_packet::Nanos;

/// Run the non-linear aggregation over the trace prefix `[0, run_ns)` and
/// return the valid-key fraction of the backing store afterwards.
fn run_accuracy(trace: &KeyTrace, pairs: usize, run_ns: u64) -> f64 {
    let geometry = CacheGeometry::set_associative(pairs, 8);
    let mut store: SplitStore<u128, MaxOps> =
        SplitStore::new(geometry, EvictionPolicy::Lru, 0xf16, MaxOps);
    for ((k, t), is_tcp) in trace.keys.iter().zip(&trace.times).zip(&trace.tcp) {
        if *t >= run_ns {
            break;
        }
        if !*is_tcp {
            continue; // the query filters WHERE proto == TCP
        }
        store.observe(*k, &u64::from(*t as u32), Nanos(*t));
    }
    store.flush();
    store.backing().accuracy()
}

fn secs(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s < 10.0 {
        format!("{s:.1}s")
    } else {
        format!("{s:.0}s")
    }
}

fn main() {
    println!("Fig. 6 reproduction: accuracy for a non-linear-in-state query");
    println!("query: SELECT 5tuple, nonmt GROUPBY 5tuple WHERE proto == TCP\n");

    let trace = KeyTrace::generate();
    let duration = trace.duration.as_nanos();
    println!(
        "workload: {} packets, {} flows, {:.1}s",
        trace.len(),
        trace.flows,
        trace.duration.as_secs_f64()
    );

    // Run lengths in the paper's 1:3:5 ratio, scaled to the trace duration.
    let runs: [u64; 3] = [duration / 5, duration * 3 / 5, duration];
    println!(
        "run lengths: {} / {} / {} (paper: 1 min / 3 min / 5 min)\n",
        secs(runs[0]),
        secs(runs[1]),
        secs(runs[2])
    );

    let paper_ratio_smallest = (1u64 << 16) as f64 / 3.8e6;
    let mut base = ((trace.flows as f64 * paper_ratio_smallest).log2().round()) as u32;
    base = base.clamp(6, 20);
    let sizes: Vec<usize> = (0..6).map(|i| 1usize << (base + i)).collect();

    let table = Table::new(&[10, 10, 14, 14, 14]);
    table.row(&[
        "pairs".into(),
        "Mbit".into(),
        format!("acc@{}", secs(runs[0])),
        format!("acc@{}", secs(runs[1])),
        format!("acc@{}", secs(runs[2])),
    ]);
    table.sep();

    let mut csv = Vec::new();
    for &pairs in &sizes {
        let accs: Vec<f64> = runs
            .iter()
            .map(|w| run_accuracy(&trace, pairs, *w))
            .collect();
        let mbit = bits_to_mbit(sram_bits_for_pairs(pairs as u64, PAIR_BITS));
        table.row(&[
            format!("{pairs}"),
            format!("{mbit:.1}"),
            format!("{:.1}%", accs[0] * 100.0),
            format!("{:.1}%", accs[1] * 100.0),
            format!("{:.1}%", accs[2] * 100.0),
        ]);
        csv.push(format!(
            "{pairs},{mbit:.2},{:.4},{:.4},{:.4}",
            accs[0], accs[1], accs[2]
        ));
    }
    table.sep();

    let mid = sizes[2]; // third point ≙ the paper's 32 Mbit
    let short = run_accuracy(&trace, mid, runs[0]);
    let full = run_accuracy(&trace, mid, runs[2]);
    println!(
        "\nAt the target size ({mid} pairs ≙ paper's 32 Mbit point):\n\
         - full-length run accuracy: {:.0}% (paper: 74% over 5 min)\n\
         - shortest run accuracy:    {:.0}% (paper: 84% over 1 min)\n\
         - expected shape: accuracy grows with cache size and shrinks with\n\
           run length.",
        full * 100.0,
        short * 100.0
    );

    let path = perfq_bench::write_csv(
        "fig6.csv",
        "pairs,mbit,acc_short,acc_mid,acc_full",
        &csv,
    );
    println!("csv: {}", path.display());
}
