//! Ablations of the hardware design choices (ablations A–C; see `ARCHITECTURE.md`).
//!
//! * **A — eviction policy**: the paper picks LRU within buckets; FIFO and
//!   random-victim are cheaper in silicon. How much eviction rate do they
//!   cost?
//! * **B — sketches**: §5 claims the key-value store "sidesteps the
//!   accuracy-memory tradeoff of sketches" for linear queries. We give a
//!   count-min sketch the *same* SRAM budget as the cache and measure its
//!   per-flow count error; the split store is exact at every size.
//! * **C — associativity**: Fig. 5 shows m=8 within 2% of full LRU; the
//!   sweep here fills in m ∈ {1,2,4,8,16}.

use perfq_bench::{si_fmt, KeyTrace, Table};
use perfq_kvstore::area::{sram_bits_for_pairs, PAIR_BITS};
use perfq_kvstore::{CacheGeometry, CountMinSketch, CounterOps, EvictionPolicy, SplitStore};
use perfq_packet::Nanos;
use std::collections::HashMap;

fn eviction_fraction(trace: &KeyTrace, geometry: CacheGeometry, policy: EvictionPolicy) -> f64 {
    let mut store: SplitStore<u128, CounterOps> =
        SplitStore::new(geometry, policy, 0xab1a, CounterOps);
    for (k, t) in trace.keys.iter().zip(&trace.times) {
        store.observe(*k, &(), Nanos(*t));
    }
    store.stats().eviction_fraction()
}

fn main() {
    println!("Ablations of the key-value store design\n");
    let trace = KeyTrace::generate();
    println!(
        "workload: {} packets, {} flows\n",
        trace.len(),
        trace.flows
    );

    let paper_ratio = (1u64 << 18) as f64 / 3.8e6; // the 32-Mbit point
    let target = ((trace.flows as f64 * paper_ratio) as usize).next_power_of_two();

    // ---- A: eviction policy ----
    println!("A. eviction policy at the target size ({target} pairs, 8-way):");
    let ta = Table::new(&[10, 14]);
    ta.row(&["policy".into(), "evictions %".into()]);
    ta.sep();
    let mut csv_a = Vec::new();
    for policy in [
        EvictionPolicy::Lru,
        EvictionPolicy::Fifo,
        EvictionPolicy::Random { seed: 7 },
    ] {
        let frac = eviction_fraction(
            &trace,
            CacheGeometry::set_associative(target, 8),
            policy,
        );
        ta.row(&[policy.name().into(), format!("{:.3}", frac * 100.0)]);
        csv_a.push(format!("{},{:.6}", policy.name(), frac));
    }
    ta.sep();
    perfq_bench::write_csv("ablation_policy.csv", "policy,eviction_frac", &csv_a);

    // ---- C: associativity sweep ----
    println!("\nC. associativity at the target size ({target} pairs, LRU):");
    let tc = Table::new(&[10, 14]);
    tc.row(&["ways".into(), "evictions %".into()]);
    tc.sep();
    let mut csv_c = Vec::new();
    for ways in [1usize, 2, 4, 8, 16] {
        let frac = eviction_fraction(
            &trace,
            CacheGeometry::set_associative(target, ways),
            EvictionPolicy::Lru,
        );
        tc.row(&[format!("{ways}"), format!("{:.3}", frac * 100.0)]);
        csv_c.push(format!("{ways},{frac:.6}"));
    }
    let full = eviction_fraction(
        &trace,
        CacheGeometry::fully_associative(target),
        EvictionPolicy::Lru,
    );
    tc.row(&["full".into(), format!("{:.3}", full * 100.0)]);
    csv_c.push(format!("full,{full:.6}"));
    tc.sep();
    perfq_bench::write_csv("ablation_ways.csv", "ways,eviction_frac", &csv_c);

    // ---- B: count-min sketch at equal memory ----
    println!("\nB. per-flow counts: count-min sketch at the cache's SRAM budget");
    println!("   (split KV store is exact at every size; sketch error below)\n");
    let mut truth: HashMap<u128, u64> = HashMap::new();
    for k in &trace.keys {
        *truth.entry(*k).or_insert(0) += 1;
    }
    let tb = Table::new(&[10, 10, 14, 14, 16]);
    tb.row(&[
        "pairs".into(),
        "Mbit".into(),
        "mean rel err".into(),
        "p99 rel err".into(),
        "kv-store err".into(),
    ]);
    tb.sep();
    let mut csv_b = Vec::new();
    for shift in 0..4 {
        let pairs = target >> shift;
        if pairs == 0 {
            continue;
        }
        let budget_bits = sram_bits_for_pairs(pairs as u64, PAIR_BITS);
        // Standard depth-4 sketch with 32-bit counters at the same budget.
        let depth = 4usize;
        let width = (budget_bits / (depth as u64 * 32)).max(1) as usize;
        let mut sketch = CountMinSketch::new(width, depth, 0xcafe);
        for k in &trace.keys {
            sketch.add(k, 1);
        }
        let mut errs: Vec<f64> = truth
            .iter()
            .map(|(k, want)| {
                let got = sketch.estimate(k);
                (got.saturating_sub(*want)) as f64 / *want as f64
            })
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let p99 = errs[(errs.len() as f64 * 0.99) as usize];
        let mbit = budget_bits as f64 / (1024.0 * 1024.0);
        tb.row(&[
            format!("{pairs}"),
            format!("{mbit:.1}"),
            format!("{:.2}x", mean),
            format!("{:.2}x", p99),
            "exact (0)".into(),
        ]);
        csv_b.push(format!("{pairs},{mbit:.2},{mean:.4},{p99:.4}"));
    }
    tb.sep();
    println!(
        "\n   note: sketch error is *over*-estimation (count-min never\n   \
         under-counts); the split store pays instead with {} backing-store\n   \
         writes/s at the target size — the paper's trade.",
        si_fmt(0.0355 * 22.6e6)
    );
    perfq_bench::write_csv(
        "ablation_sketch.csv",
        "pairs,mbit,mean_rel_err,p99_rel_err",
        &csv_b,
    );
}
