//! Decompose per-record dataplane cost: row materialization, key build,
//! store update (probe vs fold vs ring handoff), full pipeline — plus an
//! end-to-end decomposition of the full replay (trace generation vs switch
//! event loop vs store vs query execution time shares), so ingest-path
//! regressions are attributable to a stage rather than a single opaque
//! number.
//!
//! ```sh
//! cargo run --release -p perfq-bench --bin profile_runtime
//! cargo run --release -p perfq-bench --bin profile_runtime -- --csv
//! ```
//!
//! `--csv` switches the report to machine-readable rows
//! (`stage,ns_per_record,mrecords_per_sec,derived`) with section headers as
//! `#` comments, for diffing runs across commits.

use perfq_core::{compile_query, MultiRuntime, Runtime};
use perfq_lang::fig2;
use perfq_lang::Value;
use perfq_switch::{Network, NetworkConfig, QueueRecord};
use perfq_trace::{SyntheticTrace, TraceConfig};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// `--csv` flag, set once at startup before any measurement prints.
static CSV: AtomicBool = AtomicBool::new(false);

fn csv() -> bool {
    CSV.load(Ordering::Relaxed)
}

/// Print a section header (`#`-prefixed comment in CSV mode).
fn section(title: &str) {
    if csv() {
        println!("# {title}");
    } else {
        println!("\n{title}");
    }
}

/// Emit one measurement row in the active output format.
fn emit(label: &str, ns: f64, mps: f64, is_derived: bool) {
    if csv() {
        println!("{label},{ns:.2},{mps:.2},{}", u8::from(is_derived));
    } else {
        println!(
            "{label:<40} {ns:>10.2} ns/record {mps:>10.2} M/s{}",
            if is_derived { "  (derived)" } else { "" }
        );
    }
}

fn time(label: &str, n: usize, mut f: impl FnMut()) -> f64 {
    // One warmup, then best-of-3. Returns the best wall time so callers can
    // derive phase differences (e.g. fold = full − filter-only).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    emit(label, best * 1e9 / n as f64, n as f64 / best / 1e6, false);
    best
}

/// Print a derived (subtracted) phase share in the same format as [`time`].
fn derived(label: &str, n: usize, secs: f64) {
    let secs = secs.max(0.0);
    emit(
        label,
        secs * 1e9 / n as f64,
        if secs > 0.0 { n as f64 / secs / 1e6 } else { f64::INFINITY },
        true,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--csv") {
        CSV.store(true, Ordering::Relaxed);
        println!("stage,ns_per_record,mrecords_per_sec,derived");
    }
    let mut net = Network::new(NetworkConfig::default());
    let records: Vec<QueueRecord> =
        net.run_collect(SyntheticTrace::new(TraceConfig::test_small(7)).take(20_000));
    let n = records.len();
    if csv() {
        println!("# {n} records");
    } else {
        println!("{n} records\n");
    }

    // Row materialization alone.
    let mut row: Vec<Value> = Vec::new();
    time("write_row", n, || {
        let mut acc = 0i64;
        for r in &records {
            r.write_row(&mut row);
            acc = acc.wrapping_add(row[0].as_i64());
        }
        black_box(acc);
    });

    // Key build + inline key + seeded hash.
    use perfq_kvstore::hash::hash_key;
    use perfq_kvstore::{CacheGeometry, CounterOps, EvictionPolicy, InlineKey, SplitStore};
    let key_cols = [0usize, 1, 2, 3, 4];
    let mut key_buf: Vec<i64> = Vec::new();
    let keybuild = time("row + key build + hash", n, || {
        let mut acc = 0u64;
        for r in &records {
            r.write_row(&mut row);
            key_buf.clear();
            for c in &key_cols {
                key_buf.push(row[*c].as_i64());
            }
            let k = InlineKey::from_slice(&key_buf);
            acc = acc.wrapping_add(hash_key(1, &k));
        }
        black_box(acc);
    });

    // Store with a trivial counter fold over the same keys.
    time("row + key + counter store", n, || {
        let mut store: SplitStore<InlineKey, CounterOps> = SplitStore::new(
            CacheGeometry::set_associative(1 << 16, 8),
            EvictionPolicy::Lru,
            1,
            CounterOps,
        );
        for r in &records {
            r.write_row(&mut row);
            key_buf.clear();
            for c in &key_cols {
                key_buf.push(row[*c].as_i64());
            }
            store.observe(InlineKey::from_slice(&key_buf), &(), r.tin);
        }
        black_box(store.stats().packets);
    });

    // ---- store decomposition: probe vs fold vs handoff -------------------
    // The fused-upsert handle API separates the probe (hash + tag compare +
    // victim/LRU bookkeeping in `upsert_slot`) from the fold (the value
    // write through the held handle); the difference against the key-build
    // baseline isolates each. "Handoff" is the third hot-path component the
    // sharded dataplane adds on top: a record crossing the lock-free SPSC
    // ring (13-word encode, padded atomic cursors, batch publication),
    // measured single-threaded in 256-record batches so the number is the
    // per-record protocol cost, not cross-core cache traffic.
    section("store decomposition (probe vs fold vs handoff):");
    let mut cache: perfq_kvstore::SramCache<InlineKey, u64> = perfq_kvstore::SramCache::new(
        CacheGeometry::set_associative(1 << 16, 8),
        EvictionPolicy::Lru,
        1,
    );
    let probe_t = time("store: row+key+probe (upsert_slot)", n, || {
        let mut acc = 0u64;
        for r in &records {
            r.write_row(&mut row);
            key_buf.clear();
            for c in &key_cols {
                key_buf.push(row[*c].as_i64());
            }
            let (h, _) = cache.upsert_slot(InlineKey::from_slice(&key_buf), r.tin, || 0u64);
            acc = acc.wrapping_add(*cache.slot_value_mut(h));
        }
        black_box(acc);
    });
    let fold_t = time("store: row+key+probe+fold (handle)", n, || {
        for r in &records {
            r.write_row(&mut row);
            key_buf.clear();
            for c in &key_cols {
                key_buf.push(row[*c].as_i64());
            }
            let (h, _) = cache.upsert_slot(InlineKey::from_slice(&key_buf), r.tin, || 0u64);
            *cache.slot_value_mut(h) += 1;
        }
        black_box(cache.len());
    });
    derived("store: probe share", n, probe_t - keybuild);
    derived("store: fold share", n, fold_t - probe_t);
    {
        use perfq_switch::spsc::channel;
        let (tx, rx) = channel::<QueueRecord>(512);
        let mut batch: Vec<QueueRecord> = Vec::with_capacity(256);
        let mut out: Vec<QueueRecord> = Vec::with_capacity(256);
        time("store: ring handoff (13-word spsc)", n, || {
            let mut acc = 0u64;
            for part in records.chunks(256) {
                batch.extend_from_slice(part);
                tx.send_all(&mut batch).expect("receiver held open");
                rx.recv_many(&mut out, 256);
                acc = acc.wrapping_add(out.len() as u64);
                out.clear();
            }
            black_box(acc);
        });
    }

    for q in [
        &fig2::PER_FLOW_COUNTERS,
        &fig2::LATENCY_EWMA,
        &fig2::TCP_NON_MONOTONIC,
    ] {
        let compiled =
            compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
        let mut rt = Runtime::new(compiled.clone());
        time(&format!("pipeline warm: {}", q.name), n, || {
            for r in &records {
                rt.process_record(black_box(r));
            }
        });
        time(&format!("setup (clone+new): {}", q.name), n, || {
            black_box(Runtime::new(compiled.clone()));
        });
        time(&format!("pipeline cold+finish: {}", q.name), n, || {
            let mut rt = Runtime::new(compiled.clone());
            for r in &records {
                rt.process_record(black_box(r));
            }
            rt.finish();
            black_box(rt.records());
        });
    }

    // ---- vectorized path: filter phase vs fold phase ---------------------
    // The batched engine runs node-at-a-time over survivor bitmasks, so its
    // two phases are separable with public API alone: a replay of a stream
    // the base filter drops entirely costs exactly the materialize+filter
    // share (every node sees an empty mask and is skipped), and the fold/
    // store share is the difference from the full replay. For unfiltered
    // queries the filter phase is zero and the materialize-only loop below
    // is the subtrahend.
    section("vectorized batch decomposition (chunk lanes + survivor masks):");
    let mut lane_rows: Vec<Vec<Value>> = vec![Vec::new(); 16];
    let mat = time("vec: lane materialize only", n, || {
        let mut acc = 0i64;
        for chunk in records.chunks(16) {
            for (r, lane) in chunk.iter().zip(lane_rows.iter_mut()) {
                r.write_row_masked(lane, u64::MAX);
            }
            acc = acc.wrapping_add(lane_rows[0][0].as_i64());
        }
        black_box(acc);
    });
    // A clone of the trace no `proto == TCP` filter passes.
    let dropped: Vec<QueueRecord> = records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.packet.headers.ipv4.proto = perfq_packet::IpProto::Icmp;
            r
        })
        .collect();
    for (q, has_filter) in [
        (&fig2::PER_FLOW_COUNTERS, false),
        (&fig2::LATENCY_EWMA, false),
        (&fig2::TCP_NON_MONOTONIC, true),
    ] {
        let compiled =
            compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
        let mut rt = Runtime::new(compiled.clone());
        let full = time(&format!("vec: full batched: {}", q.name), n, || {
            for part in records.chunks(256) {
                rt.process_batch(part);
            }
            black_box(rt.records());
        });
        if has_filter {
            let mut drop_rt = Runtime::new(compiled.clone());
            let filt = time(
                &format!("vec: materialize+filter: {}", q.name),
                n,
                || {
                    for part in dropped.chunks(256) {
                        drop_rt.process_batch(part);
                    }
                    black_box(drop_rt.records());
                },
            );
            derived(&format!("vec: filter phase: {}", q.name), n, filt - mat);
            derived(&format!("vec: fold phase: {}", q.name), n, full - filt);
        } else {
            derived(&format!("vec: fold phase: {}", q.name), n, full - mat);
        }
    }

    // ---- end-to-end decomposition: where does a full replay spend time? --
    section("end-to-end replay decomposition (packets through Network into the engine):");
    let packets: Vec<perfq_packet::Packet> =
        SyntheticTrace::new(TraceConfig::test_small(7)).take(20_000).collect();

    // Stage 1: trace generation alone (regenerated per pass).
    time("e2e: trace generation", n, || {
        let mut count = 0usize;
        for p in SyntheticTrace::new(TraceConfig::test_small(7)).take(20_000) {
            count += usize::from(p.wire_len > 0);
        }
        black_box(count);
    });

    // Stage 2: the switch substrate (event loop, queues, release path).
    time("e2e: switch event loop", n, || {
        let mut count = 0usize;
        net.run(packets.iter().copied(), |_| count += 1);
        black_box(count);
    });

    // Stage 3: switch + split store (5-tuple counter — the kvstore share
    // without plan compilation or bytecode).
    time("e2e: switch + counter store", n, || {
        let mut store: SplitStore<InlineKey, CounterOps> = SplitStore::new(
            CacheGeometry::set_associative(1 << 16, 8),
            EvictionPolicy::Lru,
            1,
            CounterOps,
        );
        let mut row: Vec<Value> = Vec::new();
        let mut key_buf: Vec<i64> = Vec::new();
        net.run(packets.iter().copied(), |r| {
            r.write_row(&mut row);
            key_buf.clear();
            for c in [0usize, 1, 2, 3, 4] {
                key_buf.push(row[c].as_i64());
            }
            let now = r.observed_at();
            store.observe(InlineKey::from_slice(&key_buf), &(), now);
        });
        black_box(store.stats().packets);
    });

    // Stage 4: the full pipeline per Fig. 2 query (batched). Exec share =
    // this minus the switch share minus the store share.
    for q in [
        &fig2::PER_FLOW_COUNTERS,
        &fig2::LATENCY_EWMA,
        &fig2::TCP_NON_MONOTONIC,
    ] {
        let compiled =
            compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
        time(&format!("e2e: full replay: {}", q.name), n, || {
            let mut rt = Runtime::new(compiled.clone());
            net.run_batched(packets.iter().copied(), 256, |chunk| {
                rt.process_batch(chunk);
            });
            rt.finish();
            black_box(rt.records());
        });
    }

    // ---- multi-query: one shared ingest pass vs K full replays ----------
    // The shared pass saves (K-1) ingest passes and (K-1) row
    // materializations per record; the per-program plan execution cannot be
    // shared, so the attainable speedup is K·(ingest+exec̅)/(ingest+K·exec̅).
    section("multi-query (K=3 Fig. 2 queries, batched):");
    let programs: Vec<_> = [
        &fig2::PER_FLOW_COUNTERS,
        &fig2::LATENCY_EWMA,
        &fig2::TCP_NON_MONOTONIC,
    ]
    .iter()
    .map(|q| compile_query(q.source, &fig2::default_params(), Default::default()).unwrap())
    .collect();
    let mut best = [f64::INFINITY; 2];
    for (slot, label) in [(0usize, "3 sequential replays"), (1, "one shared replay")] {
        // Inline best-of-3 so the two variants' times are capturable for
        // the ratio line below.
        let mut run = |programs: &Vec<perfq_core::CompiledProgram>| match slot {
            0 => {
                for c in programs {
                    let mut rt = Runtime::new(c.clone());
                    rt.process_network(&mut net, packets.iter().copied(), 256);
                    rt.finish();
                    black_box(rt.records());
                }
            }
            _ => {
                let mut multi = MultiRuntime::new(programs.clone());
                multi.process_network(&mut net, packets.iter().copied(), 256);
                multi.finish();
                black_box(multi.records());
            }
        };
        run(&programs);
        for _ in 0..3 {
            let t = Instant::now();
            run(&programs);
            best[slot] = best[slot].min(t.elapsed().as_secs_f64());
        }
        emit(
            &format!("multi: {label}"),
            best[slot] * 1e9 / n as f64,
            n as f64 / best[slot] / 1e6,
            false,
        );
    }
    if csv() {
        println!("# multi: shared-ingest speedup = {:.2}x", best[0] / best[1]);
    } else {
        println!(
            "multi: shared-ingest speedup            {:>10.2}x",
            best[0] / best[1]
        );
    }
}
