//! §3.3 / §4 feasibility arithmetic — the paper's in-text numbers.
//!
//! Regenerates every back-of-the-envelope quantity the paper derives:
//! line rate, average packet rate under datacenter conditions, cache sizes
//! in pairs and die-area fractions, the infeasibility of storing all flows
//! on-chip, and the implied backing-store write rate.

use perfq_bench::{si_fmt, Table};
use perfq_kvstore::area::{
    bits_to_mbit, chip_area_fraction, pairs_in_sram, sram_area_mm2, sram_bits_for_pairs,
    WorkloadModel, MIN_CHIP_AREA_MM2, PAIR_BITS, SRAM_KBIT_PER_MM2,
};

fn main() {
    println!("§3.3/§4 reproduction: hardware feasibility arithmetic\n");

    println!("constants (paper's citations):");
    println!("  SRAM density          : {SRAM_KBIT_PER_MM2:.0} Kbit/mm²   [ARM, ref 13]");
    println!("  smallest switch die   : {MIN_CHIP_AREA_MM2:.0} mm²          [Gibb et al., ref 20]");
    println!(
        "  key-value pair        : {PAIR_BITS} bits (104-bit 5-tuple + 24-bit counter)\n"
    );

    let m = WorkloadModel::paper();
    println!("workload model (Benson et al. datacenter conditions):");
    println!(
        "  line rate             : {} bit/s ({}B packets at 1 GHz)",
        si_fmt(m.line_rate_bps()),
        m.min_pkt_bytes
    );
    println!(
        "  avg-size packet rate  : {} pkt/s at {:.0}% utilization, {:.0} B packets",
        si_fmt(m.avg_pps()),
        m.utilization * 100.0,
        m.avg_pkt_bytes
    );
    println!("  (paper: 22.6M average-sized packets per second)\n");

    println!("cache sizing sweep (paper: 8 Mbit = 2^16 pairs … 256 Mbit = 2^21 pairs):");
    let table = Table::new(&[10, 12, 12, 12]);
    table.row(&[
        "Mbit".into(),
        "pairs".into(),
        "mm²".into(),
        "% of die".into(),
    ]);
    table.sep();
    for mbit in [8u64, 16, 32, 64, 128, 256] {
        let bits = mbit * 1024 * 1024;
        table.row(&[
            format!("{mbit}"),
            format!("2^{}", pairs_in_sram(bits, PAIR_BITS).ilog2()),
            format!("{:.2}", sram_area_mm2(bits)),
            format!("{:.2}%", chip_area_fraction(bits, MIN_CHIP_AREA_MM2) * 100.0),
        ]);
    }
    table.sep();

    let target = 32 * 1024 * 1024u64;
    println!(
        "\ntarget size: 32 Mbit = {:.2}% of a {MIN_CHIP_AREA_MM2:.0} mm² die \
         (paper: \"under 2.5% additional area\")",
        chip_area_fraction(target, MIN_CHIP_AREA_MM2) * 100.0
    );

    let all_flows = sram_bits_for_pairs(3_800_000, PAIR_BITS);
    println!(
        "\nstoring all 3.8M trace flows on-chip would need {:.0} Mbit \
         ({:.1}% of the die) — the split design is essential\n  (paper: \"a 486-Mbit cache for a prohibitive 38% chip area overhead\";\n   the arithmetic with the paper's own density constants gives {:.1}%)",
        bits_to_mbit(all_flows),
        chip_area_fraction(all_flows, MIN_CHIP_AREA_MM2) * 100.0,
        chip_area_fraction(all_flows, MIN_CHIP_AREA_MM2) * 100.0,
    );

    println!(
        "\nbacking-store write rate at the paper's measured 3.55% eviction rate:\n  {} writes/s (paper: ~802K/s — within reach of scale-out KV stores\n  at a few hundred thousand ops/s per core)",
        si_fmt(m.evictions_per_sec(0.0355))
    );
}
