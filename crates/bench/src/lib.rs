//! # perfq-bench
//!
//! Shared infrastructure for the benchmark binaries that regenerate the
//! paper's evaluation (see `ARCHITECTURE.md` for the paper-to-code map):
//!
//! * `fig2` — the example-query table (expressiveness + linearity verdicts);
//! * `fig5` — eviction rate vs cache size for the three geometries;
//! * `fig6` — accuracy vs cache size for a non-linear query;
//! * `area` — the §3.3/§4 feasibility arithmetic;
//! * `ablation` — eviction-policy / associativity sweeps and the count-min
//!   sketch comparison.
//!
//! Scale control: the binaries default to the `caida_like` workload
//! (≈15 M packets). Set `PERFQ_SCALE` (e.g. `0.1`) to shrink run time
//! proportionally, or `PERFQ_SEED` to change the workload seed.

//!
//! For the paper-section → crate/file map of the whole workspace, see
//! `ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]

use perfq_packet::Nanos;
use perfq_trace::{SyntheticTrace, TraceConfig};
use std::io::Write;
use std::path::PathBuf;

/// Read the scale factor from `PERFQ_SCALE` (default 1.0).
#[must_use]
pub fn scale() -> f64 {
    std::env::var("PERFQ_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Read the workload seed from `PERFQ_SEED` (default 42).
#[must_use]
pub fn seed() -> u64 {
    std::env::var("PERFQ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The benchmark workload: the scaled CAIDA-like trace.
#[must_use]
pub fn bench_trace() -> SyntheticTrace {
    SyntheticTrace::new(TraceConfig::caida_like(seed()).scaled(scale()))
}

/// Materialized key stream: (packed 5-tuple, arrival, is_tcp) per packet —
/// enough for the cache experiments without re-generating per configuration.
pub struct KeyTrace {
    /// Packed 5-tuples in arrival order.
    pub keys: Vec<u128>,
    /// Arrival times (ns).
    pub times: Vec<u64>,
    /// TCP flags (for per-protocol filtering).
    pub tcp: Vec<bool>,
    /// Distinct flow count.
    pub flows: u64,
    /// Trace duration.
    pub duration: Nanos,
}

impl KeyTrace {
    /// Generate from the benchmark workload.
    #[must_use]
    pub fn generate() -> Self {
        let mut keys = Vec::new();
        let mut times = Vec::new();
        let mut tcp = Vec::new();
        let mut flows = std::collections::HashSet::new();
        let mut last = Nanos::ZERO;
        for p in bench_trace() {
            let k = p.five_tuple().to_bits();
            flows.insert(k);
            keys.push(k);
            times.push(p.arrival.as_nanos());
            tcp.push(p.headers.is_tcp());
            last = p.arrival;
        }
        KeyTrace {
            keys,
            times,
            tcp,
            flows: flows.len() as u64,
            duration: last,
        }
    }

    /// Packets in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Results directory (`target/perfq-results`), created on demand.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(
        std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()),
    )
    .join("perfq-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a CSV file into the results directory, returning its path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    path
}

/// Format a quantity with an SI suffix ("802K", "22.6M").
#[must_use]
pub fn si_fmt(v: f64) -> String {
    let av = v.abs();
    if av >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if av >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if av >= 1e3 {
        format!("{:.0}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Simple fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table with column widths.
    #[must_use]
    pub fn new(widths: &[usize]) -> Self {
        Table {
            widths: widths.to_vec(),
        }
    }

    /// Print a row of cells.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{cell:>w$}  ", w = w));
        }
        println!("{}", line.trim_end());
    }

    /// Print a separator line.
    pub fn sep(&self) {
        let total: usize = self.widths.iter().map(|w| w + 2).sum();
        println!("{}", "-".repeat(total));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        assert!(scale() > 0.0);
    }

    #[test]
    fn key_trace_generates_under_tiny_scale() {
        std::env::set_var("PERFQ_SCALE", "0.002");
        let kt = KeyTrace::generate();
        std::env::remove_var("PERFQ_SCALE");
        assert!(!kt.is_empty());
        assert!(kt.flows > 0);
        assert_eq!(kt.keys.len(), kt.times.len());
    }
}
