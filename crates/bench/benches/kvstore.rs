//! Micro-benchmarks of the programmable key-value store: per-packet update
//! cost across geometries and hit/miss regimes. The paper's line-rate budget
//! is one operation per clock (1 ns); these numbers show where the software
//! model spends time (the silicon argument is §3.3's, not ours).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfq_kvstore::{CacheGeometry, CounterOps, EvictionPolicy, SplitStore};
use perfq_packet::Nanos;

/// Deterministic key stream with a hot working set and a heavy tail.
fn key_stream(n: usize) -> Vec<u128> {
    let mut keys = Vec::with_capacity(n);
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // 80% of references hit a small hot set, 20% are cold tail keys.
        let k = if x % 10 < 8 {
            u128::from(x % 1024)
        } else {
            u128::from(x % 4_000_000) | (1u128 << 80)
        };
        keys.push(k | ((i as u128) << 96) * 0); // keep type inference happy
    }
    keys
}

fn bench_observe(c: &mut Criterion) {
    let keys = key_stream(100_000);
    let mut group = c.benchmark_group("kvstore_observe");
    group.throughput(Throughput::Elements(keys.len() as u64));
    for (name, geometry) in [
        ("hash_64k", CacheGeometry::hash_table(1 << 16)),
        ("8way_64k", CacheGeometry::set_associative(1 << 16, 8)),
        ("full_64k", CacheGeometry::fully_associative(1 << 16)),
        ("8way_4k", CacheGeometry::set_associative(1 << 12, 8)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &geometry, |b, geom| {
            b.iter(|| {
                let mut store: SplitStore<u128, CounterOps> =
                    SplitStore::new(*geom, EvictionPolicy::Lru, 1, CounterOps);
                for (i, k) in keys.iter().enumerate() {
                    store.observe(black_box(*k), &(), Nanos(i as u64));
                }
                black_box(store.stats().evictions)
            });
        });
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let keys = key_stream(100_000);
    let mut group = c.benchmark_group("kvstore_policy");
    group.throughput(Throughput::Elements(keys.len() as u64));
    for (name, policy) in [
        ("lru", EvictionPolicy::Lru),
        ("fifo", EvictionPolicy::Fifo),
        ("random", EvictionPolicy::Random { seed: 3 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, pol| {
            b.iter(|| {
                let mut store: SplitStore<u128, CounterOps> = SplitStore::new(
                    CacheGeometry::set_associative(1 << 12, 8),
                    *pol,
                    1,
                    CounterOps,
                );
                for (i, k) in keys.iter().enumerate() {
                    store.observe(black_box(*k), &(), Nanos(i as u64));
                }
                black_box(store.stats().evictions)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observe, bench_policies);
criterion_main!(benches);
