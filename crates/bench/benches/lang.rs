//! Micro-benchmarks of the language front-end: parsing, resolution (with
//! linearity analysis), and fold-IR interpretation — the control-plane cost
//! of installing a query, and the per-record ALU-model cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use perfq_lang::ir::exec_stmts;
use perfq_lang::{base_schema, compile, fig2, parser, Value};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("lang_parse");
    for q in [&fig2::LATENCY_EWMA, &fig2::PER_FLOW_LOSS_RATE] {
        group.bench_function(q.name, |b| {
            b.iter(|| black_box(parser::parse(black_box(q.source)).unwrap()));
        });
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let params = fig2::default_params();
    let mut group = c.benchmark_group("lang_compile");
    for q in fig2::ALL {
        group.bench_function(q.name, |b| {
            b.iter(|| black_box(compile(black_box(q.source), &params).unwrap()));
        });
    }
    group.finish();
}

fn bench_fold_update(c: &mut Criterion) {
    let prog = fig2::compile(&fig2::LATENCY_EWMA).unwrap();
    let fold = prog.queries[0].fold().unwrap().clone();
    let params = prog.param_values();
    let schema = base_schema();
    let mut row = vec![Value::Int(0); schema.len()];
    row[schema.index_of("tin").unwrap()] = Value::Int(1_000);
    row[schema.index_of("tout").unwrap()] = Value::Int(2_500);

    let mut group = c.benchmark_group("fold_update");
    group.throughput(Throughput::Elements(1));
    group.bench_function("ewma", |b| {
        let mut state = fold.init_state();
        b.iter(|| {
            exec_stmts(&fold.body, &mut state, black_box(&row), &params).unwrap();
            black_box(state[0])
        });
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_compile, bench_fold_update);
criterion_main!(benches);
