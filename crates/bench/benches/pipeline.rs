//! Micro-benchmarks of the switch/network substrate and the compiled query
//! runtime: records per second through queues, the network event loop, and
//! the full query dataplane.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use perfq_core::{compile_query, Durability, MultiRuntime, Runtime, ShardedRuntime};
use perfq_kvstore::{
    shared, CacheGeometry, CounterOps, EvictionPolicy, MemBackend, SpillConfig, SplitStore,
};
use perfq_lang::fig2;
use perfq_packet::{Nanos, Packet};
use perfq_switch::{Network, NetworkConfig, OutputQueue, QueueRecord, Topology};
use perfq_trace::{SyntheticTrace, TraceConfig};

fn small_records(n: usize) -> Vec<QueueRecord> {
    let mut net = Network::new(NetworkConfig::default());
    let trace = SyntheticTrace::new(TraceConfig::test_small(7)).take(n);
    net.run_collect(trace)
}

fn bench_queue(c: &mut Criterion) {
    let packets: Vec<_> = SyntheticTrace::new(TraceConfig::test_small(3))
        .take(10_000)
        .collect();
    let mut group = c.benchmark_group("queue_offer_release");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("10k_packets", |b| {
        b.iter(|| {
            let mut q = OutputQueue::new(0, 10e9, 128);
            let mut n = 0usize;
            for p in &packets {
                if q.offer(black_box(*p), p.arrival, 0).is_some() {
                    n += 1;
                }
                q.release(p.arrival, |_| n += 1);
            }
            q.flush(|_| n += 1);
            black_box(n)
        });
    });
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let packets: Vec<_> = SyntheticTrace::new(TraceConfig::test_small(4))
        .take(20_000)
        .collect();
    let mut group = c.benchmark_group("network_run");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("single_switch_20k", |b| {
        b.iter(|| {
            let mut net = Network::new(NetworkConfig::default());
            let mut n = 0usize;
            net.run(packets.iter().copied(), |_| n += 1);
            black_box(n)
        });
    });
    group.finish();
}

/// The record-at-a-time and vectorized engines over the same pre-collected
/// records, INTERLEAVED per query: each `query_runtime_batched/<q>` runs
/// immediately after its `query_runtime/<q>` twin, so the
/// batched-over-record ratio guards in BENCH_pipeline.json compare numbers
/// from the same machine-noise phase. (Running the two as whole groups puts
/// a minute of wall-clock between the sides of each ratio, and on the
/// shared bench box a phase shift in that window corrupts every ratio at
/// once.)
fn bench_runtime(c: &mut Criterion) {
    let records = small_records(20_000);
    for q in [&fig2::PER_FLOW_COUNTERS, &fig2::LATENCY_EWMA, &fig2::TCP_NON_MONOTONIC] {
        let compiled =
            compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
        let mut group = c.benchmark_group("query_runtime");
        group.throughput(Throughput::Elements(records.len() as u64));
        group.bench_function(q.name, |b| {
            b.iter(|| {
                let mut rt = Runtime::new(compiled.clone());
                for r in &records {
                    rt.process_record(black_box(r));
                }
                rt.finish();
                black_box(rt.records())
            });
        });
        group.finish();
        let mut group = c.benchmark_group("query_runtime_batched");
        group.throughput(Throughput::Elements(records.len() as u64));
        group.bench_function(q.name, |b| {
            b.iter(|| {
                let mut rt = Runtime::new(compiled.clone());
                for chunk in records.chunks(256) {
                    rt.process_batch(black_box(chunk));
                }
                rt.finish();
                black_box(rt.records())
            });
        });
        group.finish();
    }
}

/// Flow-run coalescing (PR 8) on a bursty stream: each 1024-record window
/// is sorted by flow, producing equal-key runs of ~5 records on this trace
/// (2.4k flows over 20k records) — the shape interface batching, GRO, and
/// per-port mirroring produce in practice. Per query, the coalesced run
/// (one fused probe per run, additive folds pre-reduced to one slot write)
/// interleaves immediately with its uncoalesced twin
/// (`set_run_coalescing(false)`: one probe per row, the PR 6 engine's
/// store discipline, on the same stream), so the BENCH ratio guard
/// compares numbers from the same machine-noise phase.
fn bench_runtime_bursty(c: &mut Criterion) {
    let mut records = small_records(20_000);
    for chunk in records.chunks_mut(1024) {
        chunk.sort_by_key(|r| r.packet.five_tuple().to_bits());
    }
    for q in [&fig2::PER_FLOW_COUNTERS, &fig2::LATENCY_EWMA] {
        let compiled =
            compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
        let mut group = c.benchmark_group("query_runtime_bursty");
        group.throughput(Throughput::Elements(records.len() as u64));
        for coalesce in [true, false] {
            let label = if coalesce { "coalesced" } else { "uncoalesced" };
            group.bench_function(format!("{} {label}", q.name), |b| {
                b.iter(|| {
                    let mut rt = Runtime::new(compiled.clone());
                    rt.set_run_coalescing(coalesce);
                    for chunk in records.chunks(256) {
                        rt.process_batch(black_box(chunk));
                    }
                    rt.finish();
                    black_box(rt.records())
                });
            });
        }
        group.finish();
    }
}

/// The sharded multi-core dataplane at 4 shards: router + SPSC hand-off +
/// 4 worker runtimes + merge-on-drain, end to end per iteration. On a
/// multi-core box the workers run in parallel and this scales past the
/// single-stream numbers; on a single-core runner it instead measures the
/// full sharding overhead (routing, queue locks, context switches), which
/// the BENCH guard tracks so the overhead can't silently grow.
fn bench_runtime_sharded(c: &mut Criterion) {
    let records = small_records(20_000);
    // Fixed at 4 shards: the BENCH_pipeline.json guard entries are
    // calibrated for this configuration (a different count would compare
    // apples to oranges against the committed baseline).
    let shards: usize = 4;
    let mut group = c.benchmark_group("query_runtime_sharded");
    group.throughput(Throughput::Elements(records.len() as u64));
    for q in [&fig2::PER_FLOW_COUNTERS, &fig2::LATENCY_EWMA, &fig2::TCP_NON_MONOTONIC] {
        group.bench_function(q.name, |b| {
            let compiled =
                compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
            b.iter(|| {
                let mut sh = ShardedRuntime::new(compiled.clone(), shards);
                for chunk in records.chunks(256) {
                    sh.process_batch(black_box(chunk));
                }
                let rt = sh.finish();
                black_box(rt.records())
            });
        });
    }
    group.finish();
}

/// End-to-end replay: packets → network event loop (queues, routing,
/// release) → query runtime, per iteration — the pipeline every example and
/// the Fig. 5 sweep actually runs. Unlike `query_runtime` (which consumes
/// pre-materialized records), this measures the switch substrate and the
/// execution engine together, so ingest-path allocations and queue-model
/// scans show up here.
///
/// Three consumer variants per Fig. 2 query:
/// * `end_to_end` — per-record streaming (`Runtime::process_record`);
/// * `end_to_end_batched` — 256-record batches streamed straight from
///   `Network::run_batched` into `Runtime::process_batch` (no intermediate
///   record collection);
/// * `end_to_end_sharded` — the 4-shard dataplane fed by
///   `Network::run_sharded`.
fn bench_end_to_end(c: &mut Criterion) {
    let packets: Vec<Packet> = SyntheticTrace::new(TraceConfig::test_small(7))
        .take(20_000)
        .collect();
    let mut net = Network::new(NetworkConfig::default());
    let n_records = net.run_collect(packets.iter().copied()).len() as u64;
    let queries = [&fig2::PER_FLOW_COUNTERS, &fig2::LATENCY_EWMA, &fig2::TCP_NON_MONOTONIC];

    let mut group = c.benchmark_group("end_to_end");
    group.throughput(Throughput::Elements(n_records));
    for q in queries {
        group.bench_function(q.name, |b| {
            let compiled =
                compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
            b.iter(|| {
                let mut rt = Runtime::new(compiled.clone());
                net.run(packets.iter().copied(), |r| rt.process_record(&r));
                rt.finish();
                black_box(rt.records())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("end_to_end_batched");
    group.throughput(Throughput::Elements(n_records));
    for q in queries {
        group.bench_function(q.name, |b| {
            let compiled =
                compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
            b.iter(|| {
                let mut rt = Runtime::new(compiled.clone());
                rt.process_network(&mut net, packets.iter().copied(), 256);
                rt.finish();
                black_box(rt.records())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("end_to_end_sharded");
    group.throughput(Throughput::Elements(n_records));
    for q in queries {
        group.bench_function(q.name, |b| {
            let compiled =
                compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
            b.iter(|| {
                let mut sh = ShardedRuntime::new(compiled.clone(), 4);
                let (mut router, senders) = sh.take_feeds();
                net.run_sharded(packets.iter().copied(), |r| router.route(r), senders, 256);
                let rt = sh.finish();
                black_box(rt.records())
            });
        });
    }
    group.finish();
}

/// The multi-query dataplane: K=3 concurrently-installed Fig. 2 queries.
///
/// * `sequential_3q` — today's naive deployment: three independent full
///   replays, each paying the network event loop and its own row
///   materialization;
/// * `shared_replay_3q` — `MultiRuntime`: ONE pass through the network
///   event loop, one union-mask row materialization per record, three plan
///   executions.
///
/// Both benches use `Throughput::Elements(n_records)` — the unit of work is
/// "answer all three queries over the trace" — so the elems/sec ratio reads
/// directly as the shared-ingest speedup. `scripts/bench_smoke.sh` guards
/// the ratio (shared must beat sequential) on top of the per-bench floors.
fn bench_multi_query(c: &mut Criterion) {
    let packets: Vec<Packet> = SyntheticTrace::new(TraceConfig::test_small(7))
        .take(20_000)
        .collect();
    let mut net = Network::new(NetworkConfig::default());
    let n_records = net.run_collect(packets.iter().copied()).len() as u64;
    let compiled: Vec<_> = [&fig2::PER_FLOW_COUNTERS, &fig2::LATENCY_EWMA, &fig2::TCP_NON_MONOTONIC]
        .iter()
        .map(|q| compile_query(q.source, &fig2::default_params(), Default::default()).unwrap())
        .collect();

    // Two ingest regimes: the single-switch evaluation configuration, and
    // the leaf-spine fabric (3-hop routes, pooled event heap, 6 switches of
    // queues) where the paper's multi-queue queries actually live and the
    // event loop is a larger share of each replay.
    let fabric = NetworkConfig {
        topology: Topology::LeafSpine {
            leaves: 4,
            spines: 2,
        },
        ..Default::default()
    };
    let mut fabric_net = Network::new(fabric);
    let fabric_records = fabric_net.run_collect(packets.iter().copied()).len() as u64;

    let mut group = c.benchmark_group("multi_query");
    group.throughput(Throughput::Elements(n_records));
    group.bench_function("sequential_3q", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for cq in &compiled {
                let mut rt = Runtime::new(cq.clone());
                rt.process_network(&mut net, packets.iter().copied(), 256);
                rt.finish();
                total += rt.records();
            }
            black_box(total)
        });
    });
    group.bench_function("shared_replay_3q", |b| {
        b.iter(|| {
            let mut multi = MultiRuntime::new(compiled.clone());
            multi.process_network(&mut net, packets.iter().copied(), 256);
            multi.finish();
            black_box(multi.records())
        });
    });
    group.throughput(Throughput::Elements(fabric_records));
    group.bench_function("sequential_3q_fabric", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for cq in &compiled {
                let mut rt = Runtime::new(cq.clone());
                rt.process_network(&mut fabric_net, packets.iter().copied(), 256);
                rt.finish();
                total += rt.records();
            }
            black_box(total)
        });
    });
    group.bench_function("shared_replay_3q_fabric", |b| {
        b.iter(|| {
            let mut multi = MultiRuntime::new(compiled.clone());
            multi.process_network(&mut fabric_net, packets.iter().copied(), 256);
            multi.finish();
            black_box(multi.records())
        });
    });
    group.finish();
}

/// Cross-query execution sharing: K=3 programs with **real overlap** — the
/// §4 running-example counter (`SELECT COUNT GROUPBY 5tuple`), the
/// loss-rate program (whose `R1` is that same counter, so its store
/// dedups), and the latency EWMA (which shares the 5-tuple key extraction).
///
/// Three deployment regimes per topology:
/// * `sequential_3q` — three independent full replays;
/// * `ingest_only_3q` — `MultiRuntime::new_unshared`: the PR 4 dataplane
///   (one event loop, one union-mask row materialization, three full plan
///   executions);
/// * `shared_3q` — `MultiRuntime::new`: ingest sharing **plus** the
///   cross-query layer (loss-rate R1's store elided, shared 5-tuple key
///   slots, shared filters).
///
/// All use `Throughput::Elements(n_records)` with the same n (the unit of
/// work is "answer all three queries"), so elems/sec ratios read directly
/// as speedups. `scripts/bench_smoke.sh` guards `shared/sequential` and
/// `shared/ingest_only` as same-run ratios.
fn bench_multi_query_shared(c: &mut Criterion) {
    let packets: Vec<Packet> = SyntheticTrace::new(TraceConfig::test_small(7))
        .take(20_000)
        .collect();
    let mut net = Network::new(NetworkConfig::default());
    let n_records = net.run_collect(packets.iter().copied()).len() as u64;
    let compiled: Vec<_> = [
        "SELECT COUNT GROUPBY 5tuple\n",
        fig2::PER_FLOW_LOSS_RATE.source,
        fig2::LATENCY_EWMA.source,
    ]
    .iter()
    .map(|src| compile_query(src, &fig2::default_params(), Default::default()).unwrap())
    .collect();
    // The overlap must actually be there, or the bench measures nothing.
    assert!(!MultiRuntime::new(compiled.clone()).sharing().stores.is_empty());

    let fabric = NetworkConfig {
        topology: Topology::LeafSpine {
            leaves: 4,
            spines: 2,
        },
        ..Default::default()
    };
    let mut fabric_net = Network::new(fabric);
    let fabric_records = fabric_net.run_collect(packets.iter().copied()).len() as u64;

    let mut group = c.benchmark_group("multi_query_shared");
    for (suffix, records) in [("", n_records), ("_fabric", fabric_records)] {
        group.throughput(Throughput::Elements(records));
        let net: &mut Network = if suffix.is_empty() { &mut net } else { &mut fabric_net };
        group.bench_function(format!("sequential_3q{suffix}"), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for cq in &compiled {
                    let mut rt = Runtime::new(cq.clone());
                    rt.process_network(net, packets.iter().copied(), 256);
                    rt.finish();
                    total += rt.records();
                }
                black_box(total)
            });
        });
        group.bench_function(format!("ingest_only_3q{suffix}"), |b| {
            b.iter(|| {
                let mut multi = MultiRuntime::new_unshared(compiled.clone());
                multi.process_network(net, packets.iter().copied(), 256);
                multi.finish();
                black_box(multi.records())
            });
        });
        group.bench_function(format!("shared_3q{suffix}"), |b| {
            b.iter(|| {
                let mut multi = MultiRuntime::new(compiled.clone());
                multi.process_network(net, packets.iter().copied(), 256);
                multi.finish();
                black_box(multi.records())
            });
        });
    }
    group.finish();
}

/// The Fig. 5 experiment kernel: `SELECT COUNT GROUPBY 5tuple` through a
/// split store, swept over the three paper geometries × three eviction
/// policies at a fixed capacity. This is the loop the `fig5`/`ablation`
/// binaries spend their time in; timing it here makes the eviction-sweep
/// cost a guarded quantity so the area/eviction experiments stay tractable
/// at much larger trace sizes.
fn bench_fig5_sweep(c: &mut Criterion) {
    // A key/time stream with enough flows (~2.9k) to pressure a 1k-pair
    // cache — the sweep's interesting regime (evictions happen, like the
    // paper's 3.8M-flow trace against 2^16..2^21 pairs).
    let keys_times: Vec<(u128, Nanos)> = SyntheticTrace::new(TraceConfig::test_small(11))
        .take(30_000)
        .map(|p| (p.five_tuple().to_bits(), p.arrival))
        .collect();
    let pairs = 1 << 10;
    let geometries = [
        CacheGeometry::hash_table(pairs),
        CacheGeometry::set_associative(pairs, 8),
        CacheGeometry::fully_associative(pairs),
    ];
    let policies = [
        EvictionPolicy::Lru,
        EvictionPolicy::Fifo,
        EvictionPolicy::Random { seed: 7 },
    ];
    let mut group = c.benchmark_group("fig5_sweep");
    group.throughput(Throughput::Elements(
        (keys_times.len() * geometries.len() * policies.len()) as u64,
    ));
    group.bench_function("30k_x_3geom_x_3policy", |b| {
        b.iter(|| {
            let mut evictions = 0u64;
            for geometry in geometries {
                for policy in policies {
                    let mut store: SplitStore<u128, CounterOps> =
                        SplitStore::new(geometry, policy, 0xf15, CounterOps);
                    for (k, t) in &keys_times {
                        store.observe(black_box(*k), &(), *t);
                    }
                    evictions += store.stats().evictions;
                }
            }
            black_box(evictions)
        });
    });
    group.finish();
}

/// The dynamic query lifecycle (PR 7): a replay that installs a third
/// query mid-stream under the 32 Mbit budget and uninstalls it again pays
/// two replans and two rounds of live store migration (residents shrink at
/// install, regrow at uninstall) plus the transient query's quarter-stream
/// of fold work. Benched against the same two-query replay with no churn,
/// so the pair prices the lifecycle machinery itself — the floors keep a
/// regression in the migrate/replan path from hiding inside replay noise.
fn bench_install_churn(c: &mut Criterion) {
    const MBIT: u64 = 1024 * 1024;
    let recs = small_records(20_000);
    let n = recs.len();
    let resident = || -> Vec<_> {
        [&fig2::LATENCY_EWMA, &fig2::TCP_NON_MONOTONIC]
            .iter()
            .map(|q| compile_query(q.source, &fig2::default_params(), Default::default()).unwrap())
            .collect()
    };
    let counter = compile_query(
        fig2::PER_FLOW_COUNTERS.source,
        &fig2::default_params(),
        Default::default(),
    )
    .unwrap();

    let mut group = c.benchmark_group("install_churn");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("static_2q_32mbit", |b| {
        b.iter(|| {
            let (mut multi, _plan) =
                MultiRuntime::provisioned(resident(), 32 * MBIT).expect("budget fits");
            multi.process_batch(&recs);
            multi.finish();
            black_box(multi.records())
        });
    });
    group.bench_function("churn_mid_replay_32mbit", |b| {
        b.iter(|| {
            let (mut multi, _plan) =
                MultiRuntime::provisioned(resident(), 32 * MBIT).expect("budget fits");
            multi.process_batch(&recs[..n / 2]);
            let id = multi.install(counter.clone()).expect("install replans");
            multi.process_batch(&recs[n / 2..3 * n / 4]);
            let departed = multi.uninstall(id).expect("id is live");
            multi.process_batch(&recs[3 * n / 4..]);
            multi.finish();
            black_box((multi.records(), departed.tables.len()))
        });
    });
    group.finish();
}

/// The incremental read path priced against the replay it rides on: the
/// same 20k-record batched replay (a) never polled and (b) interrupted by
/// `Runtime::poll_results` every 4 batches (~19 polls over the stream).
/// Each poll pays one store-snapshot refresh (warmed after the first:
/// in-place entry rewrites, no allocation) plus the result-row
/// materialization `collect` would pay once. The two run back-to-back in
/// one group so the BENCH_pipeline.json ratio guard (polled ≥ 0.85× of
/// never-polled) compares numbers from the same machine-noise phase.
/// Cost of the incremental read path: a replay polled every 4 batches vs
/// the same replay never polled. The polled arm is the live-dashboard
/// workload the paper motivates — a coarse per-queue aggregate refreshed
/// mid-stream — so each poll prices the snapshot-refresh machinery itself,
/// not an O(keys) row materialization (polling the dense 5-tuple counter
/// store materializes ~2.4k rows/frame at ~250ns/row and is deliberately
/// *not* the guarded pair; `poll_results` is exact either way, see
/// tests/poll_equivalence.rs).
fn bench_poll_overhead(c: &mut Criterion) {
    let recs = small_records(20_000);
    let compiled = compile_query(
        "SELECT COUNT, SUM(pkt_len) GROUPBY qid, proto",
        &fig2::default_params(),
        Default::default(),
    )
    .unwrap();
    let mut group = c.benchmark_group("poll_overhead");
    group.throughput(Throughput::Elements(recs.len() as u64));
    group.bench_function("never_polled", |b| {
        b.iter(|| {
            let mut rt = Runtime::new(compiled.clone());
            for chunk in recs.chunks(1024) {
                rt.process_batch(black_box(chunk));
            }
            rt.finish();
            black_box(rt.records())
        });
    });
    group.bench_function("polled_every_4", |b| {
        b.iter(|| {
            let mut rt = Runtime::new(compiled.clone());
            let mut rows = 0usize;
            for (i, chunk) in recs.chunks(1024).enumerate() {
                rt.process_batch(black_box(chunk));
                if (i + 1) % 4 == 0 {
                    let frame = rt.poll_results();
                    rows += frame.tables.iter().map(|t| t.rows.len()).sum::<usize>();
                }
            }
            rt.finish();
            black_box((rt.records(), rows))
        });
    });
    group.finish();
}

/// The durable tier priced against the replay it protects (PR 10). Three
/// benches in one group:
///
/// * `ingest_wal_off` / `ingest_wal_on` — the same 20k-record batched
///   counter replay, plain vs. with a spill tier attached (1024-record
///   in-RAM high-water, so the trace's ~2.4k flows actually spill) and a
///   checkpoint persisted every 16 batches. The pair runs back-to-back so
///   the BENCH_pipeline.json `wal_on over wal_off` ratio guard compares
///   numbers from the same machine-noise phase; the floor pins the
///   durability tax (spill-gate branch + frame encode + group commit +
///   periodic snapshot) so it can't silently grow. WAL-off is the
///   default-configuration replay, so its floor doubles as the
///   "Durability::Off costs nothing" regression check.
/// * `recover_100k_pairs` — cold recovery throughput: replay a WAL holding
///   100k disk-confined counter records (high-water 0: every victim
///   spills) into a fresh store, per iteration on a forked copy of the
///   in-memory filesystem. Throughput is pairs/sec; the MemBackend clone
///   (~5 MB memcpy) is part of each iteration but is small next to the
///   frame decode + absorb work being priced.
fn bench_durability(c: &mut Criterion) {
    let records = small_records(20_000);
    let compiled = compile_query(
        fig2::PER_FLOW_COUNTERS.source,
        &fig2::default_params(),
        Default::default(),
    )
    .unwrap();
    let spill = SpillConfig {
        high_water: 1024,
        group_commit_bytes: 64 * 1024,
    };

    let mut group = c.benchmark_group("durability");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("ingest_wal_off", |b| {
        b.iter(|| {
            let mut rt = Runtime::new(compiled.clone());
            for chunk in records.chunks(256) {
                rt.process_batch(black_box(chunk));
            }
            rt.finish();
            black_box(rt.records())
        });
    });
    group.bench_function("ingest_wal_on", |b| {
        b.iter(|| {
            let mut rt = Runtime::new(compiled.clone());
            rt.enable_durability(Durability::new(shared(MemBackend::new())).with_spill(spill))
                .expect("mem backend never fails");
            for (i, chunk) in records.chunks(256).enumerate() {
                rt.process_batch(black_box(chunk));
                if (i + 1) % 16 == 0 {
                    rt.persist().expect("mem backend never fails");
                }
            }
            rt.finish();
            black_box(rt.records())
        });
    });

    // Build the 100k-pair spilled state once; each iteration recovers a
    // forked copy of the filesystem, exactly the crash-restart path.
    const PAIRS: u64 = 100_000;
    let everything_spills = SpillConfig {
        high_water: 0,
        group_commit_bytes: 64 * 1024,
    };
    let seed_disk = std::sync::Arc::new(std::sync::Mutex::new(MemBackend::new()));
    let mut seed_store: SplitStore<u128, CounterOps> = SplitStore::new(
        CacheGeometry::set_associative(1 << 10, 4),
        EvictionPolicy::Lru,
        0xd07,
        CounterOps,
    );
    seed_store
        .enable_spill(seed_disk.clone(), "bench_", everything_spills)
        .expect("mem backend never fails");
    for k in 0..PAIRS {
        seed_store.observe(k as u128, &(), Nanos(k));
    }
    seed_store.persist(PAIRS).expect("mem backend never fails");
    let disk: MemBackend = seed_disk.lock().unwrap().clone();
    group.throughput(Throughput::Elements(PAIRS));
    group.bench_function("recover_100k_pairs", |b| {
        b.iter(|| {
            let mut store: SplitStore<u128, CounterOps> = SplitStore::new(
                CacheGeometry::set_associative(1 << 10, 4),
                EvictionPolicy::Lru,
                0xd07,
                CounterOps,
            );
            store
                .recover_spill(
                    shared(disk.clone()),
                    "bench_",
                    everything_spills,
                    Some(PAIRS),
                )
                .expect("recovery from a clean checkpoint succeeds");
            black_box(store.result(&0).is_some())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_queue,
    bench_network,
    bench_runtime,
    bench_runtime_bursty,
    bench_runtime_sharded,
    bench_end_to_end,
    bench_multi_query,
    bench_multi_query_shared,
    bench_install_churn,
    bench_poll_overhead,
    bench_durability,
    bench_fig5_sweep
);
criterion_main!(benches);
