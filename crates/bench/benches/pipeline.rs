//! Micro-benchmarks of the switch/network substrate and the compiled query
//! runtime: records per second through queues, the network event loop, and
//! the full query dataplane.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use perfq_core::{compile_query, Runtime, ShardedRuntime};
use perfq_lang::fig2;
use perfq_switch::{Network, NetworkConfig, OutputQueue, QueueRecord};
use perfq_trace::{SyntheticTrace, TraceConfig};

fn small_records(n: usize) -> Vec<QueueRecord> {
    let mut net = Network::new(NetworkConfig::default());
    let trace = SyntheticTrace::new(TraceConfig::test_small(7)).take(n);
    net.run_collect(trace)
}

fn bench_queue(c: &mut Criterion) {
    let packets: Vec<_> = SyntheticTrace::new(TraceConfig::test_small(3))
        .take(10_000)
        .collect();
    let mut group = c.benchmark_group("queue_offer_release");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("10k_packets", |b| {
        b.iter(|| {
            let mut q = OutputQueue::new(0, 10e9, 128);
            let mut n = 0usize;
            for p in &packets {
                if q.offer(black_box(*p), p.arrival, 0).is_some() {
                    n += 1;
                }
                n += q.release(p.arrival).len();
            }
            n += q.flush().len();
            black_box(n)
        });
    });
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let packets: Vec<_> = SyntheticTrace::new(TraceConfig::test_small(4))
        .take(20_000)
        .collect();
    let mut group = c.benchmark_group("network_run");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("single_switch_20k", |b| {
        b.iter(|| {
            let mut net = Network::new(NetworkConfig::default());
            let mut n = 0usize;
            net.run(packets.iter().copied(), |_| n += 1);
            black_box(n)
        });
    });
    group.finish();
}

fn bench_runtime(c: &mut Criterion) {
    let records = small_records(20_000);
    let mut group = c.benchmark_group("query_runtime");
    group.throughput(Throughput::Elements(records.len() as u64));
    for q in [&fig2::PER_FLOW_COUNTERS, &fig2::LATENCY_EWMA, &fig2::TCP_NON_MONOTONIC] {
        group.bench_function(q.name, |b| {
            let compiled =
                compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
            b.iter(|| {
                let mut rt = Runtime::new(compiled.clone());
                for r in &records {
                    rt.process_record(black_box(r));
                }
                rt.finish();
                black_box(rt.records())
            });
        });
    }
    group.finish();
}

fn bench_runtime_batched(c: &mut Criterion) {
    let records = small_records(20_000);
    let mut group = c.benchmark_group("query_runtime_batched");
    group.throughput(Throughput::Elements(records.len() as u64));
    for q in [&fig2::PER_FLOW_COUNTERS, &fig2::LATENCY_EWMA, &fig2::TCP_NON_MONOTONIC] {
        group.bench_function(q.name, |b| {
            let compiled =
                compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
            b.iter(|| {
                let mut rt = Runtime::new(compiled.clone());
                for chunk in records.chunks(256) {
                    rt.process_batch(black_box(chunk));
                }
                rt.finish();
                black_box(rt.records())
            });
        });
    }
    group.finish();
}

/// The sharded multi-core dataplane at 4 shards: router + SPSC hand-off +
/// 4 worker runtimes + merge-on-drain, end to end per iteration. On a
/// multi-core box the workers run in parallel and this scales past the
/// single-stream numbers; on a single-core runner it instead measures the
/// full sharding overhead (routing, queue locks, context switches), which
/// the BENCH guard tracks so the overhead can't silently grow.
fn bench_runtime_sharded(c: &mut Criterion) {
    let records = small_records(20_000);
    // Fixed at 4 shards: the BENCH_pipeline.json guard entries are
    // calibrated for this configuration (a different count would compare
    // apples to oranges against the committed baseline).
    let shards: usize = 4;
    let mut group = c.benchmark_group("query_runtime_sharded");
    group.throughput(Throughput::Elements(records.len() as u64));
    for q in [&fig2::PER_FLOW_COUNTERS, &fig2::LATENCY_EWMA, &fig2::TCP_NON_MONOTONIC] {
        group.bench_function(q.name, |b| {
            let compiled =
                compile_query(q.source, &fig2::default_params(), Default::default()).unwrap();
            b.iter(|| {
                let mut sh = ShardedRuntime::new(compiled.clone(), shards);
                for chunk in records.chunks(256) {
                    sh.process_batch(black_box(chunk));
                }
                let rt = sh.finish();
                black_box(rt.records())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_queue,
    bench_network,
    bench_runtime,
    bench_runtime_batched,
    bench_runtime_sharded
);
criterion_main!(benches);
