//! Trace summary statistics.
//!
//! Used by the benchmark harness to report the workload alongside results
//! (the paper's §4 setup paragraph: packet count, unique 5-tuples, duration,
//! average packet size) and by tests to validate generator calibration.

use perfq_packet::{FiveTuple, Nanos, Packet};
use std::collections::HashMap;

/// Aggregate statistics of a packet stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total packets.
    pub packets: u64,
    /// Total wire bytes.
    pub bytes: u64,
    /// Distinct transport 5-tuples.
    pub flows: u64,
    /// First packet arrival.
    pub first: Nanos,
    /// Last packet arrival.
    pub last: Nanos,
    /// Packets in the largest flow.
    pub max_flow_pkts: u64,
    /// Share of packets carried by the top 1% of flows (by packet count).
    pub top1pct_share: f64,
    /// TCP share of packets.
    pub tcp_fraction: f64,
}

impl TraceStats {
    /// Compute statistics over a packet stream.
    #[must_use]
    pub fn from_packets(packets: impl Iterator<Item = Packet>) -> Self {
        let mut flow_counts: HashMap<FiveTuple, u64> = HashMap::new();
        let mut n = 0u64;
        let mut bytes = 0u64;
        let mut tcp = 0u64;
        let mut first = Nanos::INFINITY;
        let mut last = Nanos::ZERO;
        for p in packets {
            n += 1;
            bytes += u64::from(p.wire_len);
            if p.headers.is_tcp() {
                tcp += 1;
            }
            first = first.min(p.arrival);
            last = last.max(p.arrival);
            *flow_counts.entry(p.five_tuple()).or_insert(0) += 1;
        }
        let mut sizes: Vec<u64> = flow_counts.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let top_n = (sizes.len() as f64 / 100.0).ceil() as usize;
        let top1: u64 = sizes.iter().take(top_n.max(1)).sum();
        TraceStats {
            packets: n,
            bytes,
            flows: flow_counts.len() as u64,
            first: if n == 0 { Nanos::ZERO } else { first },
            last,
            max_flow_pkts: sizes.first().copied().unwrap_or(0),
            top1pct_share: if n == 0 { 0.0 } else { top1 as f64 / n as f64 },
            tcp_fraction: if n == 0 { 0.0 } else { tcp as f64 / n as f64 },
        }
    }

    /// Mean packets per flow.
    #[must_use]
    pub fn pkts_per_flow(&self) -> f64 {
        if self.flows == 0 {
            0.0
        } else {
            self.packets as f64 / self.flows as f64
        }
    }

    /// Mean wire bytes per packet.
    #[must_use]
    pub fn mean_pkt_bytes(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.bytes as f64 / self.packets as f64
        }
    }

    /// Capture duration.
    #[must_use]
    pub fn duration(&self) -> Nanos {
        self.last.delta(self.first)
    }

    /// Average offered load in packets/second.
    #[must_use]
    pub fn pps(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d <= 0.0 {
            0.0
        } else {
            self.packets as f64 / d
        }
    }

    /// Average offered load in bits/second.
    #[must_use]
    pub fn bps(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / d
        }
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} pkts, {} flows ({:.1} pkts/flow), {:.1} s, {:.0} B/pkt, \
             {:.2} Mpps, {:.2} Gbit/s, top-1% share {:.0}%",
            self.packets,
            self.flows,
            self.pkts_per_flow(),
            self.duration().as_secs_f64(),
            self.mean_pkt_bytes(),
            self.pps() / 1e6,
            self.bps() / 1e9,
            self.top1pct_share * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticTrace, TraceConfig};

    #[test]
    fn counts_are_consistent() {
        let trace: Vec<Packet> = SyntheticTrace::new(TraceConfig::test_small(8)).collect();
        let stats = TraceStats::from_packets(trace.iter().copied());
        assert_eq!(stats.packets as usize, trace.len());
        assert!(stats.flows > 0 && stats.flows <= stats.packets);
        assert!(stats.pkts_per_flow() >= 1.0);
        assert!(stats.max_flow_pkts >= 1);
        assert!(stats.duration() > Nanos::ZERO);
        assert!(stats.top1pct_share > 0.0 && stats.top1pct_share <= 1.0);
    }

    #[test]
    fn empty_stream() {
        let stats = TraceStats::from_packets(std::iter::empty());
        assert_eq!(stats.packets, 0);
        assert_eq!(stats.pkts_per_flow(), 0.0);
        assert_eq!(stats.pps(), 0.0);
        assert_eq!(stats.mean_pkt_bytes(), 0.0);
    }

    #[test]
    fn summary_is_printable() {
        let trace = SyntheticTrace::new(TraceConfig::test_small(8)).take(1000);
        let s = TraceStats::from_packets(trace).summary();
        assert!(s.contains("pkts"));
        assert!(s.contains("flows"));
    }
}
