//! # perfq-trace
//!
//! Workload substrate for the `perfq` reproduction: everything the paper
//! sources from captures and testbeds, synthesized with controlled, seeded
//! randomness.
//!
//! * [`dist`] — inverse-transform samplers (exponential, bounded Pareto,
//!   Zipf, empirical packet-size mixes);
//! * [`tcp`] — TCP sequence-number dynamics (retransmit / reorder injection)
//!   for the Fig. 2 anomaly queries;
//! * [`synthetic`] — the CAIDA-like packet stream (the paper's trace,
//!   scaled; see `ARCHITECTURE.md`) plus datacenter presets;
//! * [`incast`] — synchronized fan-in bursts for the incast-diagnosis
//!   example;
//! * [`io`] — a binary capture format for replayable traces;
//! * [`stats`] — workload summaries for reports and calibration tests.
//!
//! # Example
//!
//! ```
//! use perfq_trace::{SyntheticTrace, TraceConfig, TraceStats};
//!
//! let trace = SyntheticTrace::new(TraceConfig::test_small(1));
//! let stats = TraceStats::from_packets(trace.take(10_000));
//! assert!(stats.flows > 100);
//! println!("{}", stats.summary());
//! ```

//!
//! For the paper-section → crate/file map of the whole workspace, see
//! `ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod incast;
pub mod io;
pub mod stats;
pub mod synthetic;
pub mod tcp;

pub use dist::{BoundedPareto, Exponential, PacketSizeMix, Zipf};
pub use incast::IncastConfig;
pub use stats::TraceStats;
pub use synthetic::{SyntheticTrace, TraceConfig};
pub use tcp::{TcpDynamics, TcpFlowSeq};
