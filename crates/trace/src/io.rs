//! Binary trace files.
//!
//! A minimal, self-describing capture format so traces can be generated
//! once and replayed across benchmark runs (and so the parser substrate is
//! exercised on real byte buffers):
//!
//! ```text
//! header:  magic "PQT1" | u64 packet count
//! record:  u64 arrival_ns | u64 uniq | u16 wire_len | u16 hdr_len | hdr bytes
//! ```
//!
//! Only header bytes are stored (payloads are zeros by construction);
//! `wire_len` preserves the original packet length for `pkt_len` queries.
//! All integers are little-endian.

use perfq_packet::{wire, Nanos, Packet};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PQT1";

/// Write a packet stream to `w`. Returns the number of packets written.
pub fn write_trace<W: Write>(w: &mut W, packets: impl Iterator<Item = Packet>) -> io::Result<u64> {
    // Buffer records so the count can be written up front.
    let mut body = Vec::new();
    let mut count = 0u64;
    for p in packets {
        let hdr = wire::serialize(&p);
        let hdr_len = (hdr.len() as u16).min(p.wire_len); // headers only
        let hdr_bytes = &hdr[..usize::from(hdr_len).min(64)];
        body.extend_from_slice(&p.arrival.as_nanos().to_le_bytes());
        body.extend_from_slice(&p.uniq.to_le_bytes());
        body.extend_from_slice(&p.wire_len.to_le_bytes());
        body.extend_from_slice(&(hdr_bytes.len() as u16).to_le_bytes());
        body.extend_from_slice(hdr_bytes);
        count += 1;
    }
    w.write_all(MAGIC)?;
    w.write_all(&count.to_le_bytes())?;
    w.write_all(&body)?;
    Ok(count)
}

/// Read a full trace from `r`.
pub fn read_trace<R: Read>(r: &mut R) -> io::Result<Vec<Packet>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a perfq trace (bad magic)",
        ));
    }
    let mut count_buf = [0u8; 8];
    r.read_exact(&mut count_buf)?;
    let count = u64::from_le_bytes(count_buf);
    let mut packets = Vec::with_capacity(count.min(1 << 24) as usize);
    for i in 0..count {
        let mut fixed = [0u8; 20];
        r.read_exact(&mut fixed).map_err(|e| {
            io::Error::new(e.kind(), format!("truncated at record {i}: {e}"))
        })?;
        let arrival = u64::from_le_bytes(fixed[0..8].try_into().expect("8 bytes"));
        let uniq = u64::from_le_bytes(fixed[8..16].try_into().expect("8 bytes"));
        let wire_len = u16::from_le_bytes(fixed[16..18].try_into().expect("2 bytes"));
        let hdr_len = u16::from_le_bytes(fixed[18..20].try_into().expect("2 bytes"));
        let mut hdr = vec![0u8; usize::from(hdr_len)];
        r.read_exact(&mut hdr)?;
        let headers = wire::parse_headers(&hdr)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        packets.push(Packet {
            headers,
            wire_len,
            uniq,
            arrival: Nanos(arrival),
        });
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticTrace, TraceConfig};

    #[test]
    fn round_trip_preserves_packets() {
        let original: Vec<Packet> = SyntheticTrace::new(TraceConfig::test_small(9))
            .take(2_000)
            .collect();
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, original.iter().copied()).unwrap();
        assert_eq!(n, 2_000);
        let restored = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(restored, original);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\0\0\0\0\0\0\0\0".to_vec();
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_reports_record() {
        let original: Vec<Packet> = SyntheticTrace::new(TraceConfig::test_small(9))
            .take(10)
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, original.into_iter()).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("record") || err.kind() == std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        assert!(read_trace(&mut buf.as_slice()).unwrap().is_empty());
    }
}
