//! Sampling primitives for workload synthesis.
//!
//! The trace generator needs heavy-tailed flow sizes (the defining property
//! of Internet traffic that drives the paper's cache-eviction results),
//! Poisson arrivals, and an empirical packet-size mix. All are implemented by
//! inverse-transform sampling over `rand`'s uniform source so the substrate
//! has no opaque statistical dependencies.

use rand::Rng;

/// Exponential distribution (inter-arrival gaps of a Poisson process).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Create with the given mean (must be positive).
    #[must_use]
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Exponential { mean }
    }

    /// Draw a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform: −mean·ln(U), U ∈ (0,1].
        let u: f64 = 1.0 - rng.gen::<f64>(); // avoid ln(0)
        -self.mean * u.ln()
    }
}

/// Discrete bounded Pareto distribution for flow sizes in packets.
///
/// `P(X ≥ x) ∝ x^(−α)` for `x ∈ [min, cap]`. Small `α` (1.0–1.4) produces
/// the mice-and-elephants mix measured in WAN traces: the median flow is a
/// handful of packets while a tiny fraction of flows carries most packets.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    alpha: f64,
    min: f64,
    cap: f64,
}

impl BoundedPareto {
    /// Create with tail index `alpha`, minimum `min` and cap `cap`.
    #[must_use]
    pub fn new(alpha: f64, min: u64, cap: u64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(min >= 1 && cap > min, "need 1 <= min < cap");
        BoundedPareto {
            alpha,
            min: min as f64,
            cap: cap as f64,
        }
    }

    /// Draw an integer sample in `[min, cap]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Inverse CDF of the bounded Pareto.
        let u: f64 = rng.gen();
        let (l, h, a) = (self.min, self.cap, self.alpha);
        let la = l.powf(-a);
        let ha = h.powf(-a);
        let x = (la - u * (la - ha)).powf(-1.0 / a);
        (x as u64).clamp(self.min as u64, self.cap as u64)
    }

    /// Analytic mean of the continuous bounded Pareto (sanity checks).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let (l, h, a) = (self.min, self.cap, self.alpha);
        if (a - 1.0).abs() < 1e-9 {
            // α = 1: mean = ln(h/l) · l·h/(h−l)
            (h / l).ln() * l * h / (h - l)
        } else {
            (l.powf(a) / (1.0 - l.powf(a) / h.powf(a))) * (a / (a - 1.0))
                * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
        }
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s` — used for
/// popularity skew (destination hot spots).
///
/// Sampling is by binary search over the precomputed CDF: O(log n) per draw,
/// exact, and deterministic given the RNG.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create over `n` ranks with exponent `s ≥ 0` (s = 0 is uniform).
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// An empirical packet-size mix: weighted size buckets with uniform draw
/// inside each bucket.
///
/// The default approximates the long-measured Internet bimodal mix: ~45 %
/// minimum-size packets (ACKs), ~35 % MTU-size, the rest spread between.
#[derive(Debug, Clone)]
pub struct PacketSizeMix {
    buckets: Vec<(f64, u16, u16)>, // (cumulative weight, lo, hi)
}

impl PacketSizeMix {
    /// Build from `(weight, lo, hi)` buckets (weights need not sum to 1).
    #[must_use]
    pub fn new(spec: &[(f64, u16, u16)]) -> Self {
        assert!(!spec.is_empty(), "need at least one bucket");
        let total: f64 = spec.iter().map(|(w, _, _)| w).sum();
        let mut acc = 0.0;
        let buckets = spec
            .iter()
            .map(|(w, lo, hi)| {
                assert!(lo <= hi, "bucket range inverted");
                acc += w / total;
                (acc, *lo, *hi)
            })
            .collect();
        PacketSizeMix { buckets }
    }

    /// The classic WAN bimodal mix (payload bytes on top of 54 B of headers).
    #[must_use]
    pub fn internet() -> Self {
        Self::new(&[
            (0.45, 0, 12),      // ACK-size
            (0.18, 100, 500),   // small transactions
            (0.37, 1300, 1446), // MTU-size
        ])
    }

    /// Datacenter mix tuned so the mean wire size is ≈850 B, the average the
    /// paper adopts from Benson et al.
    #[must_use]
    pub fn datacenter() -> Self {
        Self::new(&[(0.35, 0, 12), (0.12, 200, 1000), (0.53, 1380, 1446)])
    }

    /// Draw a payload size in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        let u: f64 = rng.gen();
        for (acc, lo, hi) in &self.buckets {
            if u <= *acc {
                return rng.gen_range(*lo..=*hi);
            }
        }
        let (_, lo, hi) = self.buckets[self.buckets.len() - 1];
        rng.gen_range(lo..=hi)
    }

    /// Empirical mean payload size (for utilization math).
    #[must_use]
    pub fn mean_payload(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (acc, lo, hi) in &self.buckets {
            mean += (acc - prev) * f64::from(*lo + (hi - lo) / 2);
            prev = *acc;
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xabcd)
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(5.0);
        let mut r = rng();
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let d = BoundedPareto::new(1.2, 1, 100_000);
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let ones = samples.iter().filter(|s| **s == 1).count() as f64 / n as f64;
        // P(X = 1) is large under α=1.2 (mice dominate)…
        assert!(ones > 0.4, "P(X=1) = {ones}");
        // …but elephants exist and carry a disproportionate share.
        let max = *samples.iter().max().unwrap();
        assert!(max > 1_000, "max = {max}");
        let total: u64 = samples.iter().sum();
        let mut sorted = samples.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = sorted.iter().take(n / 100).sum();
        assert!(
            top1pct as f64 / total as f64 > 0.25,
            "top 1% of flows carry {}% of packets",
            100.0 * top1pct as f64 / total as f64
        );
    }

    #[test]
    fn pareto_respects_bounds() {
        let d = BoundedPareto::new(0.8, 2, 50);
        let mut r = rng();
        for _ in 0..10_000 {
            let s = d.sample(&mut r);
            assert!((2..=50).contains(&s));
        }
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[99]);
        // Rank 0 frequency ≈ 1/H_100 ≈ 0.192.
        let f0 = counts[0] as f64 / 50_000.0;
        assert!((f0 - 0.192).abs() < 0.02, "f0 = {f0}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            let f = c as f64 / 50_000.0;
            assert!((f - 0.1).abs() < 0.02, "f = {f}");
        }
    }

    #[test]
    fn packet_mix_within_ranges() {
        let m = PacketSizeMix::internet();
        let mut r = rng();
        for _ in 0..10_000 {
            let s = m.sample(&mut r);
            assert!(s <= 1446);
        }
    }

    #[test]
    fn datacenter_mix_mean_near_850_wire_bytes() {
        let m = PacketSizeMix::datacenter();
        let mut r = rng();
        let n = 200_000;
        // Wire size = Ethernet(14) + IP(20) + TCP(20) + payload.
        let sum: f64 = (0..n).map(|_| 54.0 + f64::from(m.sample(&mut r))).sum();
        let mean = sum / f64::from(n);
        assert!(
            (mean - 850.0).abs() < 40.0,
            "mean wire size = {mean} (want ≈ 850)"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = BoundedPareto::new(1.1, 1, 1000);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
