//! TCP sequence-number dynamics.
//!
//! The paper's Fig. 2 queries `outofseq` and `nonmt` count sequence-number
//! anomalies. Real anomalies come from loss, retransmission and reordering in
//! the network; since we have no production TCP endpoints, this module
//! generates the *sequence-number patterns* those events produce, with
//! configurable rates — preserving exactly the signal the queries consume
//! (see `ARCHITECTURE.md`, workload substitutions).

use rand::Rng;
use std::collections::VecDeque;

/// Rates of sequence anomalies injected into generated TCP flows.
#[derive(Debug, Clone, Copy)]
pub struct TcpDynamics {
    /// Probability that a segment is retransmitted (emitted again later with
    /// the same sequence number — a non-monotonic event).
    pub p_retransmit: f64,
    /// Probability that a segment is reordered with its successor (the
    /// higher sequence number is emitted first — both an out-of-sequence and
    /// a non-monotonic event).
    pub p_reorder: f64,
}

impl TcpDynamics {
    /// No anomalies: strictly consecutive sequence numbers.
    #[must_use]
    pub fn clean() -> Self {
        TcpDynamics {
            p_retransmit: 0.0,
            p_reorder: 0.0,
        }
    }

    /// Mild WAN-like anomaly rates.
    #[must_use]
    pub fn typical() -> Self {
        TcpDynamics {
            p_retransmit: 0.01,
            p_reorder: 0.005,
        }
    }

    /// Heavy anomaly rates (congested path / incast victim).
    #[must_use]
    pub fn lossy() -> Self {
        TcpDynamics {
            p_retransmit: 0.05,
            p_reorder: 0.02,
        }
    }
}

/// Segments a retransmission waits behind before re-emission (a loss is
/// detected by duplicate ACKs / timeout, several segments later).
const RETRANSMIT_DELAY: u8 = 3;

/// Per-flow sequence-number generator.
#[derive(Debug, Clone)]
pub struct TcpFlowSeq {
    next_seq: u32,
    /// Segments to emit before any fresh one (reordering swaps).
    immediate: VecDeque<(u32, u16)>,
    /// Retransmissions waiting out their delay, in segments.
    delayed: Vec<(u32, u16, u8)>,
}

impl TcpFlowSeq {
    /// Start a flow at an initial sequence number.
    #[must_use]
    pub fn new(isn: u32) -> Self {
        TcpFlowSeq {
            next_seq: isn,
            immediate: VecDeque::new(),
            delayed: Vec::new(),
        }
    }

    /// Produce the next segment `(seq, payload_len)` for a segment of
    /// `payload` bytes, injecting anomalies per `dynamics`.
    pub fn next_segment<R: Rng + ?Sized>(
        &mut self,
        payload: u16,
        dynamics: &TcpDynamics,
        rng: &mut R,
    ) -> (u32, u16) {
        // Age pending retransmissions; a ready one preempts fresh data.
        for d in &mut self.delayed {
            d.2 = d.2.saturating_sub(1);
        }
        if let Some(pos) = self.delayed.iter().position(|d| d.2 == 0) {
            let (seq, len, _) = self.delayed.remove(pos);
            return (seq, len);
        }
        if let Some(seg) = self.immediate.pop_front() {
            return seg;
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(u32::from(payload.max(1)));
        let roll: f64 = rng.gen();
        if roll < dynamics.p_retransmit {
            // The segment is emitted now and again a few segments later —
            // by then the sequence number is below the running maximum, so
            // the copy registers as non-monotonic (a retransmission).
            self.delayed.push((seq, payload, RETRANSMIT_DELAY));
            (seq, payload)
        } else if roll < dynamics.p_retransmit + dynamics.p_reorder {
            // Emit the successor first, then this segment.
            let seq2 = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(u32::from(payload.max(1)));
            self.immediate.push_back((seq, payload));
            (seq2, payload)
        } else {
            (seq, payload)
        }
    }
}

/// Reference implementations of the two Fig. 2 anomaly counters, used by
/// tests to validate generated patterns (independent of the query engine).
pub mod counters {
    /// Count "out of sequence" events: packets whose seq is not consecutive
    /// with the previous packet (`lastseq + payload != seq`, matching the
    /// prose: the fold tracks `lastseq = tcpseq + payload_len`).
    #[must_use]
    pub fn out_of_sequence(segments: &[(u32, u16)]) -> u64 {
        let mut count = 0;
        let mut lastseq: Option<u32> = None;
        for (seq, payload) in segments {
            if let Some(expect) = lastseq {
                if expect != *seq {
                    count += 1;
                }
            }
            lastseq = Some(seq.wrapping_add(u32::from((*payload).max(1))));
        }
        count
    }

    /// Count non-monotonic events: packets with `seq < max(seq so far)`.
    #[must_use]
    pub fn non_monotonic(segments: &[(u32, u16)]) -> u64 {
        let mut count = 0;
        let mut maxseq = 0u32;
        for (seq, _) in segments {
            if maxseq > *seq {
                count += 1;
            }
            maxseq = maxseq.max(*seq);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generate(dynamics: TcpDynamics, n: usize, seed: u64) -> Vec<(u32, u16)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flow = TcpFlowSeq::new(1000);
        (0..n)
            .map(|_| flow.next_segment(100, &dynamics, &mut rng))
            .collect()
    }

    #[test]
    fn clean_flow_is_strictly_consecutive() {
        let segs = generate(TcpDynamics::clean(), 100, 1);
        assert_eq!(counters::out_of_sequence(&segs), 0);
        assert_eq!(counters::non_monotonic(&segs), 0);
        for (i, (seq, _)) in segs.iter().enumerate() {
            assert_eq!(*seq, 1000 + 100 * i as u32);
        }
    }

    #[test]
    fn retransmissions_create_non_monotonic_events() {
        let d = TcpDynamics {
            p_retransmit: 0.2,
            p_reorder: 0.0,
        };
        let segs = generate(d, 2000, 2);
        let nm = counters::non_monotonic(&segs);
        assert!(nm > 100, "non-monotonic = {nm}");
        // Every retransmission also breaks consecutiveness somewhere.
        assert!(counters::out_of_sequence(&segs) >= nm);
    }

    #[test]
    fn reordering_creates_both_anomalies() {
        let d = TcpDynamics {
            p_retransmit: 0.0,
            p_reorder: 0.2,
        };
        let segs = generate(d, 2000, 3);
        assert!(counters::non_monotonic(&segs) > 100);
        assert!(counters::out_of_sequence(&segs) > 100);
    }

    #[test]
    fn anomaly_rate_tracks_configuration() {
        let d = TcpDynamics {
            p_retransmit: 0.05,
            p_reorder: 0.0,
        };
        let n = 20_000;
        let segs = generate(d, n, 4);
        let nm = counters::non_monotonic(&segs) as f64;
        // Each retransmission event yields exactly one non-monotonic packet;
        // events occur on ~5% of the fresh segments.
        let rate = nm / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn sequence_wraps_safely() {
        let mut flow = TcpFlowSeq::new(u32::MAX - 50);
        let mut rng = StdRng::seed_from_u64(5);
        let d = TcpDynamics::clean();
        for _ in 0..10 {
            let _ = flow.next_segment(100, &d, &mut rng);
        }
        // No panic: wrapping arithmetic.
    }

    #[test]
    fn zero_payload_still_advances() {
        let mut flow = TcpFlowSeq::new(0);
        let mut rng = StdRng::seed_from_u64(6);
        let d = TcpDynamics::clean();
        let (a, _) = flow.next_segment(0, &d, &mut rng);
        let (b, _) = flow.next_segment(0, &d, &mut rng);
        assert!(b > a, "pure-ACK streams must not stall the generator");
    }
}
