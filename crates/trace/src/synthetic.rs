//! Synthetic CAIDA-like trace generation.
//!
//! This is the substitution for the paper's CAIDA April-2016 capture (157 M
//! packets, ~3.8 M 5-tuples over 5 minutes of a 10 Gbit/s link): a stream of
//! parsed packets whose *key-reference locality* — heavy-tailed flow sizes,
//! Poisson flow arrivals, interleaved flow lifetimes — matches the regime
//! that drives the paper's cache results. See `ARCHITECTURE.md` for the workload rationale.
//!
//! The generator is a lazy event merge: a binary heap holds the next packet
//! of every live flow; new flows arrive by a Poisson process until the
//! configured duration; packets after the duration cut are discarded exactly
//! like a capture that stops at five minutes.

use crate::dist::{BoundedPareto, Exponential, PacketSizeMix, Zipf};
use crate::tcp::{TcpDynamics, TcpFlowSeq};
use perfq_packet::{Nanos, Packet, PacketBuilder, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

/// How packets are spaced within a flow.
#[derive(Debug, Clone, Copy)]
pub enum Pacing {
    /// All flows share one mean inter-packet gap (exponential jitter).
    FixedMeanGap(f64),
    /// Each flow picks a lifetime uniformly in `[min_ns, max_ns]` and paces
    /// its packets to fill it: `gap = lifetime / size`. This reproduces the
    /// WAN regime the paper's CAIDA trace exhibits — elephants are fast,
    /// mice are sparse, and *every* flow spans seconds, so the instantaneous
    /// working set far exceeds the on-chip cache and drives the Fig. 5/6
    /// eviction behaviour.
    LifetimePaced {
        /// Shortest flow lifetime (ns).
        min_ns: u64,
        /// Longest flow lifetime (ns).
        max_ns: u64,
    },
}

/// Configuration of the synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// RNG seed (every run with the same config is bit-identical).
    pub seed: u64,
    /// Capture duration; no packets are emitted past it.
    pub duration: Nanos,
    /// Poisson flow-arrival rate (flows per second).
    pub flows_per_sec: f64,
    /// Flow-size distribution in packets.
    pub flow_size: BoundedPareto,
    /// Intra-flow packet pacing.
    pub pacing: Pacing,
    /// Packet (payload) size mix.
    pub pkt_sizes: PacketSizeMix,
    /// Fraction of flows that are TCP (the rest are UDP).
    pub tcp_fraction: f64,
    /// Sequence-anomaly rates for TCP flows.
    pub tcp_dynamics: TcpDynamics,
    /// Size of the client (source) address pool.
    pub clients: usize,
    /// Size of the server (destination) address pool.
    pub servers: usize,
    /// Zipf exponent of server popularity (0 = uniform).
    pub server_zipf: f64,
}

impl TraceConfig {
    /// A small trace for unit tests: ~2 s, a few thousand flows.
    #[must_use]
    pub fn test_small(seed: u64) -> Self {
        TraceConfig {
            seed,
            duration: Nanos::from_secs(2),
            flows_per_sec: 2_000.0,
            flow_size: BoundedPareto::new(0.8, 1, 10_000),
            pacing: Pacing::FixedMeanGap(5e6),
            pkt_sizes: PacketSizeMix::internet(),
            tcp_fraction: 0.9,
            tcp_dynamics: TcpDynamics::typical(),
            clients: 2_000,
            servers: 500,
            server_zipf: 0.9,
        }
    }

    /// The benchmark workload: a scaled-down CAIDA-like mix. Defaults to
    /// ~400 K flows / ~14 M packets over 60 s — the paper's 3.8 M-flow,
    /// 157 M-packet trace shrunk ~10× with the same flow-size skew
    /// (packets-per-flow ≈ 41, elephants dominating bytes).
    #[must_use]
    pub fn caida_like(seed: u64) -> Self {
        TraceConfig {
            seed,
            duration: Nanos::from_secs(60),
            flows_per_sec: 6_400.0,
            flow_size: BoundedPareto::new(0.8, 1, 200_000),
            pacing: Pacing::LifetimePaced {
                min_ns: 2_000_000_000,
                max_ns: 120_000_000_000,
            },
            pkt_sizes: PacketSizeMix::internet(),
            tcp_fraction: 0.85,
            tcp_dynamics: TcpDynamics::typical(),
            clients: 200_000,
            servers: 40_000,
            server_zipf: 0.9,
        }
    }

    /// Datacenter-flavoured mix: Benson-style sizes (≈850 B mean), shorter
    /// gaps, heavier TCP share.
    #[must_use]
    pub fn datacenter(seed: u64) -> Self {
        TraceConfig {
            seed,
            duration: Nanos::from_secs(10),
            flows_per_sec: 20_000.0,
            flow_size: BoundedPareto::new(1.1, 1, 50_000),
            pacing: Pacing::FixedMeanGap(5e6),
            pkt_sizes: PacketSizeMix::datacenter(),
            tcp_fraction: 0.98,
            tcp_dynamics: TcpDynamics::typical(),
            clients: 5_000,
            servers: 1_000,
            server_zipf: 1.1,
        }
    }

    /// Scale packet volume by scaling duration and flow arrivals together
    /// (keeps per-flow structure identical).
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        self.duration = Nanos((self.duration.as_nanos() as f64 * factor) as u64);
        self
    }
}

/// Well-known service ports used for destination ports.
const SERVICE_PORTS: [u16; 8] = [80, 443, 53, 22, 8080, 3306, 5432, 25];

#[derive(Debug)]
struct LiveFlow {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    is_tcp: bool,
    remaining: u64,
    /// Mean inter-packet gap for this flow, in nanoseconds.
    mean_gap_ns: f64,
    tcp: TcpFlowSeq,
    /// Per-flow deterministic RNG (isolates flows from heap pop order).
    rng: StdRng,
}

/// Heap event: next packet of a live flow at a given time.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    flow_idx: usize,
}

/// The synthetic packet stream. Iterate to receive [`Packet`]s in
/// non-decreasing arrival order.
pub struct SyntheticTrace {
    cfg: TraceConfig,
    rng: StdRng,
    heap: BinaryHeap<Reverse<Event>>,
    flows: Vec<LiveFlow>,
    free_slots: Vec<usize>,
    next_arrival: u64,
    arrivals_done: bool,
    arrival_gap: Exponential,
    server_pick: Zipf,
    uniq: u64,
}

impl SyntheticTrace {
    /// Create a generator from a configuration.
    #[must_use]
    pub fn new(cfg: TraceConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let arrival_gap = Exponential::new(1e9 / cfg.flows_per_sec.max(1e-9));
        let server_pick = Zipf::new(cfg.servers.max(1), cfg.server_zipf);
        SyntheticTrace {
            cfg,
            rng,
            heap: BinaryHeap::new(),
            flows: Vec::new(),
            free_slots: Vec::new(),
            next_arrival: 0,
            arrivals_done: false,
            arrival_gap,
            server_pick,
            uniq: 0,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    fn client_ip(&mut self) -> Ipv4Addr {
        let idx = self.rng.gen_range(0..self.cfg.clients.max(1)) as u32;
        // 10.0.0.0/8 pool, spread via multiplicative hash.
        Ipv4Addr::from(0x0a00_0000 | (idx.wrapping_mul(2_654_435_761) & 0x00ff_ffff))
    }

    fn server_ip(&mut self) -> Ipv4Addr {
        let rank = self.server_pick.sample(&mut self.rng) as u32;
        // 172.16.0.0/12 pool.
        Ipv4Addr::from(0xac10_0000 | (rank.wrapping_mul(2_246_822_519) & 0x000f_ffff))
    }

    fn spawn_flow(&mut self, now: u64) {
        let size = self.cfg.flow_size.sample(&mut self.rng);
        let is_tcp = self.rng.gen::<f64>() < self.cfg.tcp_fraction;
        let mean_gap_ns = match self.cfg.pacing {
            Pacing::FixedMeanGap(g) => g.max(1.0),
            Pacing::LifetimePaced { min_ns, max_ns } => {
                let lifetime = self.rng.gen_range(min_ns..=max_ns.max(min_ns + 1)) as f64;
                (lifetime / size as f64).max(1.0)
            }
        };
        let flow = LiveFlow {
            src: self.client_ip(),
            dst: self.server_ip(),
            src_port: self.rng.gen_range(32_768..=65_535),
            dst_port: SERVICE_PORTS[self.rng.gen_range(0..SERVICE_PORTS.len())],
            is_tcp,
            remaining: size,
            mean_gap_ns,
            tcp: TcpFlowSeq::new(self.rng.gen()),
            rng: StdRng::seed_from_u64(self.rng.gen()),
        };
        let idx = match self.free_slots.pop() {
            Some(i) => {
                self.flows[i] = flow;
                i
            }
            None => {
                self.flows.push(flow);
                self.flows.len() - 1
            }
        };
        self.heap.push(Reverse(Event {
            time: now,
            flow_idx: idx,
        }));
    }

    fn schedule_arrivals_up_to(&mut self, t: u64) {
        while !self.arrivals_done && self.next_arrival <= t {
            let at = self.next_arrival;
            if at >= self.cfg.duration.as_nanos() {
                self.arrivals_done = true;
                break;
            }
            self.spawn_flow(at);
            self.next_arrival = at + self.arrival_gap.sample(&mut self.rng).max(1.0) as u64;
        }
    }

    fn emit(&mut self, flow_idx: usize, now: u64) -> Packet {
        let payload = self.cfg.pkt_sizes.sample(&mut self.rng);
        self.uniq += 1;
        let uniq = self.uniq;
        let flow = &mut self.flows[flow_idx];
        let builder = if flow.is_tcp {
            let (seq, paylen) =
                flow.tcp
                    .next_segment(payload, &self.cfg.tcp_dynamics, &mut flow.rng);
            PacketBuilder::tcp()
                .seq(seq)
                .flags(TcpFlags::ACK)
                .payload_len(paylen)
        } else {
            PacketBuilder::udp().payload_len(payload)
        };
        builder
            .src(flow.src, flow.src_port)
            .dst(flow.dst, flow.dst_port)
            .uniq(uniq)
            .arrival(Nanos(now))
            .build()
    }
}

impl Iterator for SyntheticTrace {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        loop {
            // Make sure every event up to the heap head has had the chance to
            // spawn competing flows.
            let head_time = self.heap.peek().map(|Reverse(e)| e.time);
            match head_time {
                None => {
                    if self.arrivals_done {
                        return None;
                    }
                    self.schedule_arrivals_up_to(self.next_arrival);
                    // If duration elapsed without spawning, we are done.
                    if self.heap.is_empty() && self.arrivals_done {
                        return None;
                    }
                }
                Some(t) => {
                    if !self.arrivals_done && self.next_arrival <= t {
                        self.schedule_arrivals_up_to(t);
                        continue;
                    }
                    let Reverse(ev) = self.heap.pop().expect("peeked nonempty");
                    if ev.time >= self.cfg.duration.as_nanos() {
                        // Hard capture cut: drop the flow's remaining packets.
                        self.free_slots.push(ev.flow_idx);
                        continue;
                    }
                    let pkt = self.emit(ev.flow_idx, ev.time);
                    let flow = &mut self.flows[ev.flow_idx];
                    flow.remaining = flow.remaining.saturating_sub(1);
                    if flow.remaining > 0 {
                        let dt = Exponential::new(flow.mean_gap_ns)
                            .sample(&mut self.rng)
                            .max(1.0) as u64;
                        self.heap.push(Reverse(Event {
                            time: ev.time + dt,
                            flow_idx: ev.flow_idx,
                        }));
                    } else {
                        self.free_slots.push(ev.flow_idx);
                    }
                    return Some(pkt);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn packets_arrive_in_order_within_duration() {
        let trace = SyntheticTrace::new(TraceConfig::test_small(1));
        let mut last = Nanos::ZERO;
        let mut n = 0u64;
        for p in trace {
            assert!(p.arrival >= last, "out of order at packet {n}");
            assert!(p.arrival < Nanos::from_secs(2));
            last = p.arrival;
            n += 1;
        }
        assert!(n > 10_000, "only {n} packets generated");
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<_> = SyntheticTrace::new(TraceConfig::test_small(7))
            .take(5_000)
            .collect();
        let b: Vec<_> = SyntheticTrace::new(TraceConfig::test_small(7))
            .take(5_000)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a: Vec<_> = SyntheticTrace::new(TraceConfig::test_small(1))
            .take(100)
            .collect();
        let b: Vec<_> = SyntheticTrace::new(TraceConfig::test_small(2))
            .take(100)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn uniq_ids_are_unique_and_sequential() {
        let ids: Vec<u64> = SyntheticTrace::new(TraceConfig::test_small(3))
            .take(1000)
            .map(|p| p.uniq)
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(*id, i as u64 + 1);
        }
    }

    #[test]
    fn flow_structure_is_heavy_tailed() {
        let mut flows: std::collections::HashMap<_, u64> = std::collections::HashMap::new();
        for p in SyntheticTrace::new(TraceConfig::test_small(4)) {
            *flows.entry(p.five_tuple()).or_insert(0) += 1;
        }
        let n_flows = flows.len() as f64;
        let total: u64 = flows.values().sum();
        let mut sizes: Vec<u64> = flows.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let top1: u64 = sizes.iter().take((n_flows / 100.0).ceil() as usize).sum();
        assert!(
            top1 as f64 / total as f64 > 0.15,
            "top-1% flows carry {:.1}%",
            100.0 * top1 as f64 / total as f64
        );
        // Median flow is small.
        let median = sizes[sizes.len() / 2];
        assert!(median <= 5, "median flow size = {median}");
    }

    #[test]
    fn tcp_and_udp_mix_matches_fraction() {
        let mut tcp = 0u64;
        let mut total = 0u64;
        let mut tcp_flows = HashSet::new();
        let mut all_flows = HashSet::new();
        for p in SyntheticTrace::new(TraceConfig::test_small(5)) {
            total += 1;
            if p.headers.is_tcp() {
                tcp += 1;
                tcp_flows.insert(p.five_tuple());
            }
            all_flows.insert(p.five_tuple());
        }
        assert!(total > 0);
        let flow_frac = tcp_flows.len() as f64 / all_flows.len() as f64;
        assert!((flow_frac - 0.9).abs() < 0.03, "tcp flow fraction = {flow_frac}");
        assert!(tcp > 0);
    }

    #[test]
    fn caida_like_calibration() {
        // The benchmark preset should land near the paper's 41 packets per
        // flow (157M pkts / 3.8M flows). Flow lifetimes span seconds, so the
        // full 60 s window is needed; thin the arrival rate to keep the test
        // fast while preserving per-flow structure.
        let cfg = TraceConfig {
            flows_per_sec: 250.0,
            ..TraceConfig::caida_like(11)
        };
        // Lifetime pacing: flows span seconds, not milliseconds — the
        // property that creates cache reuse-distance pressure.
        assert!(matches!(cfg.pacing, Pacing::LifetimePaced { .. }));
        let mut flows = HashSet::new();
        let mut pkts = 0u64;
        for p in SyntheticTrace::new(cfg) {
            flows.insert(p.five_tuple());
            pkts += 1;
        }
        let per_flow = pkts as f64 / flows.len() as f64;
        assert!(
            per_flow > 8.0 && per_flow < 90.0,
            "packets per flow = {per_flow} (paper: ≈41)"
        );
    }

    #[test]
    fn ips_come_from_disjoint_pools() {
        for p in SyntheticTrace::new(TraceConfig::test_small(6)).take(2000) {
            assert_eq!(p.headers.ipv4.src.octets()[0], 10, "client pool is 10/8");
            assert_eq!(p.headers.ipv4.dst.octets()[0], 172, "server pool is 172.16/12");
        }
    }

    #[test]
    fn scaled_changes_duration_only() {
        let base = TraceConfig::test_small(1);
        let double = TraceConfig::test_small(1).scaled(2.0);
        assert_eq!(double.duration.as_nanos(), base.duration.as_nanos() * 2);
        assert_eq!(double.flows_per_sec, base.flows_per_sec);
        assert!(matches!(double.pacing, Pacing::FixedMeanGap(_)));
    }
}
