//! Incast scenario generation.
//!
//! The paper motivates switch-side measurement with questions endpoints
//! cannot answer, e.g. "which applications contribute to TCP incast at a
//! particular queue" (§5, discussing TPP/INT). This module synthesizes the
//! classic incast pattern: many servers answer one client's scatter-gather
//! request near-simultaneously, swamping the client's top-of-rack queue —
//! the workload behind the `incast_diagnosis` example.

use crate::dist::PacketSizeMix;
use perfq_packet::{Nanos, Packet, PacketBuilder, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Incast scenario parameters.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of responding servers (the incast fan-in).
    pub servers: usize,
    /// The victim client receiving all responses.
    pub client: Ipv4Addr,
    /// Packets each server sends per round.
    pub burst_pkts: u64,
    /// Number of synchronized request rounds.
    pub rounds: u64,
    /// Gap between rounds.
    pub round_gap: Nanos,
    /// Jitter of each server's response start within a round.
    pub jitter: Nanos,
    /// Gap between a server's packets within its burst.
    pub intra_burst_gap: Nanos,
    /// Response packet payload sizes.
    pub pkt_sizes: PacketSizeMix,
}

impl Default for IncastConfig {
    fn default() -> Self {
        IncastConfig {
            seed: 42,
            servers: 40,
            client: Ipv4Addr::new(10, 0, 0, 1),
            burst_pkts: 32,
            rounds: 5,
            round_gap: Nanos::from_millis(10),
            jitter: Nanos::from_micros(20),
            intra_burst_gap: Nanos::from_micros(1),
            pkt_sizes: PacketSizeMix::datacenter(),
        }
    }
}

/// Generate the incast packet stream, sorted by arrival time.
///
/// Each server uses a distinct 5-tuple (server:svc_port → client:req_port),
/// so per-flow queries attribute queue build-up to contributing connections.
#[must_use]
pub fn generate(cfg: &IncastConfig) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut packets = Vec::new();
    let mut uniq = 0u64;
    let mut seqs = vec![0u32; cfg.servers];
    for round in 0..cfg.rounds {
        let round_start = Nanos(cfg.round_gap.as_nanos() * round);
        for s in 0..cfg.servers {
            let server_ip = Ipv4Addr::from(0xac10_0100 + s as u32);
            let start = round_start
                + Nanos(rng.gen_range(0..=cfg.jitter.as_nanos().max(1)));
            for i in 0..cfg.burst_pkts {
                let payload = cfg.pkt_sizes.sample(&mut rng);
                uniq += 1;
                let t = start + Nanos(cfg.intra_burst_gap.as_nanos() * i);
                packets.push(
                    PacketBuilder::tcp()
                        .src(server_ip, 5001)
                        .dst(cfg.client, 40_000 + round as u16)
                        .seq(seqs[s])
                        .flags(TcpFlags::ACK.union(TcpFlags::PSH))
                        .payload_len(payload)
                        .uniq(uniq)
                        .arrival(t)
                        .build(),
                );
                seqs[s] = seqs[s].wrapping_add(u32::from(payload.max(1)));
            }
        }
    }
    packets.sort_by_key(|p| (p.arrival, p.uniq));
    packets
}

/// Mix an incast stream into a background stream, preserving time order.
#[must_use]
pub fn merge_with_background(
    mut incast: Vec<Packet>,
    background: impl Iterator<Item = Packet>,
) -> Vec<Packet> {
    // Re-number uniq ids so the merged trace stays collision-free.
    let mut merged: Vec<Packet> = background.collect();
    let offset = merged.iter().map(|p| p.uniq).max().unwrap_or(0);
    for p in &mut incast {
        p.uniq += offset;
    }
    merged.extend(incast);
    merged.sort_by_key(|p| (p.arrival, p.uniq));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticTrace, TraceConfig};
    use std::collections::HashSet;

    #[test]
    fn generates_expected_volume() {
        let cfg = IncastConfig::default();
        let pkts = generate(&cfg);
        assert_eq!(
            pkts.len() as u64,
            cfg.servers as u64 * cfg.burst_pkts * cfg.rounds
        );
    }

    #[test]
    fn all_traffic_targets_the_client() {
        let cfg = IncastConfig::default();
        for p in generate(&cfg) {
            assert_eq!(p.headers.ipv4.dst, cfg.client);
        }
    }

    #[test]
    fn each_server_is_a_distinct_flow() {
        let cfg = IncastConfig {
            rounds: 1,
            ..Default::default()
        };
        let flows: HashSet<_> = generate(&cfg).iter().map(|p| p.five_tuple()).collect();
        assert_eq!(flows.len(), cfg.servers);
    }

    #[test]
    fn bursts_are_synchronized_within_jitter() {
        let cfg = IncastConfig {
            rounds: 1,
            ..Default::default()
        };
        let pkts = generate(&cfg);
        // All first packets of each flow fall within the jitter window.
        let mut first_seen = std::collections::HashMap::new();
        for p in &pkts {
            first_seen.entry(p.five_tuple()).or_insert(p.arrival);
        }
        for t in first_seen.values() {
            assert!(*t <= cfg.jitter, "first packet at {t}");
        }
    }

    #[test]
    fn arrivals_sorted() {
        let pkts = generate(&IncastConfig::default());
        for w in pkts.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn merge_preserves_order_and_uniqueness() {
        let bg = SyntheticTrace::new(TraceConfig::test_small(3)).take(5_000);
        let merged = merge_with_background(generate(&IncastConfig::default()), bg);
        let mut ids = HashSet::new();
        for w in merged.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for p in &merged {
            assert!(ids.insert(p.uniq), "duplicate uniq {}", p.uniq);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&IncastConfig::default());
        let b = generate(&IncastConfig::default());
        assert_eq!(a, b);
    }
}
