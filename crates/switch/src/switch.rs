//! A single switch: a set of output queues behind a forwarding decision.
//!
//! The model captures exactly what the paper's schema observes — per-queue
//! arrival/departure times, occupancy and drops. Parsing and match-action
//! processing happen at line rate and contribute fixed latency, which the
//! queue timestamps absorb; the variable (and diagnostically interesting)
//! component is queueing, which [`OutputQueue`] models exactly.

use crate::queue::{OutputQueue, QueueStats};
use crate::record::QueueRecord;
use perfq_packet::{Nanos, Packet};

/// Maximum ports per switch (fixes the qid numbering scheme:
/// `qid = switch_id · MAX_PORTS + port`).
pub const MAX_PORTS: usize = 64;

/// Configuration of one switch.
#[derive(Debug, Clone, Copy)]
pub struct SwitchConfig {
    /// Number of output ports (each with one queue).
    pub ports: usize,
    /// Port line rate in bits/second.
    pub port_rate_bps: f64,
    /// Queue capacity in packets.
    pub queue_capacity: usize,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 16,
            port_rate_bps: 10e9,
            queue_capacity: 128,
        }
    }
}

/// Result of offering a packet to a switch.
#[derive(Debug, Clone, PartialEq)]
pub enum Forwarded {
    /// Accepted; departs the switch at `tout`.
    Enqueued {
        /// Departure time from the output queue.
        tout: Nanos,
        /// Path identifier after this queue.
        path: u64,
    },
    /// Dropped at the output queue; the drop record is produced immediately.
    Dropped(QueueRecord),
}

/// A switch with per-port output queues.
#[derive(Debug, Clone)]
pub struct Switch {
    id: u32,
    queues: Vec<OutputQueue>,
    /// Lower bound on the earliest unreleased departure across all queues
    /// (`Nanos::INFINITY` when idle): [`Switch::release`] returns in one
    /// compare when no record can be due yet, instead of scanning every
    /// port's queue on every event.
    next_release: Nanos,
}

impl Switch {
    /// Build a switch. `id` determines its queues' global ids.
    #[must_use]
    pub fn new(id: u32, cfg: &SwitchConfig) -> Self {
        assert!(cfg.ports > 0 && cfg.ports <= MAX_PORTS, "1..={MAX_PORTS} ports");
        let base = id * MAX_PORTS as u32;
        Switch {
            id,
            queues: (0..cfg.ports)
                .map(|p| OutputQueue::new(base + p as u32, cfg.port_rate_bps, cfg.queue_capacity))
                .collect(),
            next_release: Nanos::INFINITY,
        }
    }

    /// Switch id.
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of ports.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.queues.len()
    }

    /// The global qid of a port's queue.
    #[must_use]
    pub fn qid(&self, port: usize) -> u32 {
        self.queues[port].qid()
    }

    /// Offer a packet to an output port at `now`.
    pub fn offer(&mut self, packet: Packet, port: usize, now: Nanos, path: u64) -> Forwarded {
        let queue = &mut self.queues[port];
        match queue.offer(packet, now, path) {
            Some(drop) => Forwarded::Dropped(drop),
            None => {
                let tout = queue.horizon();
                // The accepted packet can only lower the earliest pending
                // departure (it *is* the queue's front when the queue was
                // idle), so the cached bound stays a lower bound.
                self.next_release = self.next_release.min(tout);
                Forwarded::Enqueued {
                    tout,
                    path: QueueRecord::extend_path(path, queue.qid()),
                }
            }
        }
    }

    /// Release departure records up to `now` from all queues, straight into
    /// `sink` (no intermediate collection). One compare when nothing is due.
    pub fn release(&mut self, now: Nanos, sink: &mut impl FnMut(QueueRecord)) {
        if now < self.next_release {
            return;
        }
        let mut next = Nanos::INFINITY;
        for q in &mut self.queues {
            q.release(now, &mut *sink);
            if let Some(t) = q.next_release() {
                next = next.min(t);
            }
        }
        self.next_release = next;
    }

    /// Release everything (end of run).
    pub fn flush(&mut self, sink: &mut impl FnMut(QueueRecord)) {
        for q in &mut self.queues {
            q.flush(&mut *sink);
        }
        self.next_release = Nanos::INFINITY;
    }

    /// Aggregate queue statistics.
    #[must_use]
    pub fn stats(&self) -> Vec<(u32, QueueStats)> {
        self.queues.iter().map(|q| (q.qid(), q.stats())).collect()
    }

    /// Reset every queue to its just-built state (see
    /// [`crate::queue::OutputQueue::reset`]).
    pub fn reset(&mut self) {
        for q in &mut self.queues {
            q.reset();
        }
        self.next_release = Nanos::INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfq_packet::PacketBuilder;

    fn pkt(uniq: u64) -> Packet {
        PacketBuilder::tcp().payload_len(946).uniq(uniq).build()
    }

    #[test]
    fn qids_are_globally_unique() {
        let cfg = SwitchConfig::default();
        let s0 = Switch::new(0, &cfg);
        let s1 = Switch::new(1, &cfg);
        assert_eq!(s0.qid(0), 0);
        assert_eq!(s0.qid(15), 15);
        assert_eq!(s1.qid(0), 64);
        assert_eq!(s1.qid(3), 67);
    }

    #[test]
    fn forwarding_reports_departure_time() {
        let mut s = Switch::new(0, &SwitchConfig {
            ports: 2,
            port_rate_bps: 8e9,
            queue_capacity: 4,
        });
        match s.offer(pkt(1), 0, Nanos(0), 0) {
            Forwarded::Enqueued { tout, path } => {
                assert_eq!(tout, Nanos(1000));
                assert_ne!(path, 0);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn drops_surface_immediately() {
        let mut s = Switch::new(0, &SwitchConfig {
            ports: 1,
            port_rate_bps: 8e9,
            queue_capacity: 2,
        });
        s.offer(pkt(1), 0, Nanos(0), 0);
        s.offer(pkt(2), 0, Nanos(0), 0);
        match s.offer(pkt(3), 0, Nanos(0), 0) {
            Forwarded::Dropped(r) => {
                assert!(r.is_drop());
                assert_eq!(r.packet.uniq, 3);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn release_and_flush_produce_all_records() {
        let mut s = Switch::new(0, &SwitchConfig::default());
        s.offer(pkt(1), 0, Nanos(0), 0);
        s.offer(pkt(2), 1, Nanos(0), 0);
        let mut records = Vec::new();
        s.release(Nanos(10_000_000), &mut |r| records.push(r));
        s.flush(&mut |r| records.push(r));
        assert_eq!(records.len(), 2);
        // Different ports → different qids.
        assert_ne!(records[0].qid, records[1].qid);
    }

    #[test]
    fn stats_roll_up_per_queue() {
        let mut s = Switch::new(0, &SwitchConfig {
            ports: 2,
            port_rate_bps: 8e9,
            queue_capacity: 1,
        });
        s.offer(pkt(1), 0, Nanos(0), 0);
        s.offer(pkt(2), 0, Nanos(0), 0); // dropped
        let stats = s.stats();
        assert_eq!(stats[0].1.enqueued, 1);
        assert_eq!(stats[0].1.dropped, 1);
        assert_eq!(stats[1].1.enqueued, 0);
    }
}
