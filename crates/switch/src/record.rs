//! Packet observation records — rows of the paper's base table.
//!
//! §2: "the input table of records contains each packet's arrival and
//! departure at every queue in a network", with schema
//! `(pkt_hdr, qid, tin, tout, qsize, pkt_path)`. A [`QueueRecord`] is one
//! such row; [`QueueRecord::to_row`] lays it out exactly as
//! `perfq_lang::base_schema()` declares, so compiled queries index columns
//! positionally.

use perfq_lang::schema::META_COLUMNS;
use perfq_lang::types::{Value, INFINITY_NS};
use perfq_packet::{HeaderField, Nanos, Packet};

/// One (packet, queue) observation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueRecord {
    /// The observed packet.
    pub packet: Packet,
    /// Queue identifier — unique per (switch, port) in the network.
    pub qid: u32,
    /// Arrival (enqueue) time at this queue.
    pub tin: Nanos,
    /// Departure time; `Nanos::INFINITY` if the packet was dropped here.
    pub tout: Nanos,
    /// Queue depth (packets) seen at enqueue — the schema's `qsize`/`qin`.
    pub qsize: u32,
    /// Queue depth at departure (0 for drops).
    pub qout: u32,
    /// Opaque path identifier accumulated over the queues traversed so far
    /// (the schema's `pkt_path`).
    pub path: u64,
}

impl QueueRecord {
    /// True if the packet was dropped at this queue.
    #[must_use]
    pub fn is_drop(&self) -> bool {
        self.tout.is_infinite()
    }

    /// Queueing delay at this queue (infinite for drops).
    #[must_use]
    pub fn delay(&self) -> Nanos {
        self.tout.delta(self.tin)
    }

    /// Extend a path identifier with a traversed queue (an opaque encoding;
    /// the paper leaves `pkt_path` uninterpreted).
    #[must_use]
    pub fn extend_path(path: u64, qid: u32) -> u64 {
        path.wrapping_mul(0x100).wrapping_add(u64::from(qid) + 1)
    }

    /// Materialize the record as a base-schema row.
    ///
    /// Column order is `HeaderField::ALL` then the metadata columns — the
    /// same order `perfq_lang::base_schema()` constructs, asserted by test.
    #[must_use]
    pub fn to_row(&self) -> Vec<Value> {
        let mut row = Vec::with_capacity(HeaderField::ALL.len() + META_COLUMNS.len());
        for f in HeaderField::ALL {
            row.push(Value::Int(f.extract(&self.packet) as i64));
        }
        row.push(Value::Int(i64::from(self.qid)));
        row.push(Value::Int(nanos_to_i64(self.tin)));
        row.push(Value::Int(nanos_to_i64(self.tout)));
        row.push(Value::Int(i64::from(self.qsize)));
        row.push(Value::Int(i64::from(self.qout)));
        row.push(Value::Int(self.path as i64));
        row
    }
}

/// Clamp a simulation timestamp into the query layer's integer domain,
/// mapping the drop sentinel onto `infinity`.
#[must_use]
pub fn nanos_to_i64(t: Nanos) -> i64 {
    if t.is_infinite() {
        INFINITY_NS
    } else {
        i64::try_from(t.as_nanos()).unwrap_or(INFINITY_NS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfq_lang::schema::base_schema;
    use perfq_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn record() -> QueueRecord {
        QueueRecord {
            packet: PacketBuilder::tcp()
                .src(Ipv4Addr::new(10, 0, 0, 1), 1000)
                .dst(Ipv4Addr::new(10, 0, 0, 2), 80)
                .seq(7)
                .payload_len(100)
                .uniq(3)
                .build(),
            qid: 5,
            tin: Nanos(100),
            tout: Nanos(250),
            qsize: 4,
            qout: 2,
            path: 9,
        }
    }

    #[test]
    fn row_aligns_with_base_schema() {
        let schema = base_schema();
        let row = record().to_row();
        assert_eq!(row.len(), schema.len());
        let at = |name: &str| row[schema.index_of(name).unwrap()];
        assert_eq!(at("qid"), Value::Int(5));
        assert_eq!(at("tin"), Value::Int(100));
        assert_eq!(at("tout"), Value::Int(250));
        assert_eq!(at("qsize"), Value::Int(4));
        assert_eq!(at("qin"), Value::Int(4)); // alias
        assert_eq!(at("qout"), Value::Int(2));
        assert_eq!(at("pkt_path"), Value::Int(9));
        assert_eq!(at("tcpseq"), Value::Int(7));
        assert_eq!(at("srcport"), Value::Int(1000));
        assert_eq!(at("pkt_uniq"), Value::Int(3));
    }

    #[test]
    fn drops_map_to_infinity() {
        let mut r = record();
        r.tout = Nanos::INFINITY;
        assert!(r.is_drop());
        assert!(r.delay().is_infinite());
        let schema = base_schema();
        let row = r.to_row();
        assert_eq!(row[schema.index_of("tout").unwrap()], Value::Int(INFINITY_NS));
    }

    #[test]
    fn delay_is_tout_minus_tin() {
        assert_eq!(record().delay(), Nanos(150));
    }

    #[test]
    fn path_extension_is_order_sensitive() {
        let a = QueueRecord::extend_path(QueueRecord::extend_path(0, 1), 2);
        let b = QueueRecord::extend_path(QueueRecord::extend_path(0, 2), 1);
        assert_ne!(a, b);
        assert_ne!(QueueRecord::extend_path(0, 0), 0, "qid 0 must still mark the path");
    }
}
