//! Packet observation records — rows of the paper's base table.
//!
//! §2: "the input table of records contains each packet's arrival and
//! departure at every queue in a network", with schema
//! `(pkt_hdr, qid, tin, tout, qsize, pkt_path)`. A [`QueueRecord`] is one
//! such row; [`QueueRecord::to_row`] lays it out exactly as
//! `perfq_lang::base_schema()` declares, so compiled queries index columns
//! positionally.

use perfq_lang::schema::META_COLUMNS;
use perfq_lang::types::{Value, INFINITY_NS};
use perfq_packet::{HeaderField, Nanos, Packet};

/// One (packet, queue) observation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueRecord {
    /// The observed packet.
    pub packet: Packet,
    /// Queue identifier — unique per (switch, port) in the network.
    pub qid: u32,
    /// Arrival (enqueue) time at this queue.
    pub tin: Nanos,
    /// Departure time; `Nanos::INFINITY` if the packet was dropped here.
    pub tout: Nanos,
    /// Queue depth (packets) seen at enqueue — the schema's `qsize`/`qin`.
    pub qsize: u32,
    /// Queue depth at departure (0 for drops).
    pub qout: u32,
    /// Opaque path identifier accumulated over the queues traversed so far
    /// (the schema's `pkt_path`).
    pub path: u64,
}

impl QueueRecord {
    /// True if the packet was dropped at this queue.
    #[must_use]
    pub fn is_drop(&self) -> bool {
        self.tout.is_infinite()
    }

    /// Queueing delay at this queue (infinite for drops).
    #[must_use]
    pub fn delay(&self) -> Nanos {
        self.tout.delta(self.tin)
    }

    /// The time this observation is charged to: departure for forwarded
    /// packets, arrival for drops (a drop has no finite `tout`) — the `now`
    /// every streaming consumer hands its stores.
    #[must_use]
    pub fn observed_at(&self) -> Nanos {
        if self.is_drop() {
            self.tin
        } else {
            self.tout
        }
    }

    /// Extend a path identifier with a traversed queue (an opaque encoding;
    /// the paper leaves `pkt_path` uninterpreted).
    #[must_use]
    pub fn extend_path(path: u64, qid: u32) -> u64 {
        path.wrapping_mul(0x100).wrapping_add(u64::from(qid) + 1)
    }

    /// Materialize the record as a base-schema row.
    ///
    /// Column order is `HeaderField::ALL` then the metadata columns — the
    /// same order `perfq_lang::base_schema()` constructs, asserted by test.
    #[must_use]
    pub fn to_row(&self) -> Vec<Value> {
        let mut row = Vec::with_capacity(HeaderField::ALL.len() + META_COLUMNS.len());
        self.write_row(&mut row);
        row
    }

    /// Materialize the row into a caller-owned buffer (cleared first), so a
    /// streaming consumer reuses one allocation across all records.
    ///
    /// This is the dataplane's record → row step, so the header fields are
    /// laid down with a single L4 dispatch instead of one
    /// [`HeaderField::extract`] match per column; the column order is
    /// identical (asserted by test against `extract`).
    pub fn write_row(&self, row: &mut Vec<Value>) {
        use perfq_packet::L4Header;
        row.clear();
        row.reserve(HeaderField::ALL.len() + META_COLUMNS.len());
        let pkt = &self.packet;
        let h = &pkt.headers;
        let int = |v: u64| Value::Int(v as i64);
        // Header fields, in `HeaderField::ALL` order.
        row.push(int(u64::from(u32::from(h.ipv4.src)))); // srcip
        row.push(int(u64::from(u32::from(h.ipv4.dst)))); // dstip
        let (src_port, dst_port, tcp) = match &h.l4 {
            L4Header::Tcp(t) => (t.src_port, t.dst_port, Some(t)),
            L4Header::Udp(u) => (u.src_port, u.dst_port, None),
            L4Header::Opaque => (0, 0, None),
        };
        row.push(int(u64::from(src_port))); // srcport
        row.push(int(u64::from(dst_port))); // dstport
        row.push(int(u64::from(h.ipv4.proto.to_u8()))); // proto
        row.push(int(u64::from(h.ipv4.ttl))); // ttl
        row.push(int(u64::from(h.ipv4.ident))); // ipid
        row.push(int(u64::from(h.ipv4.dscp_ecn))); // tos
        row.push(int(u64::from(pkt.wire_len))); // pkt_len
        row.push(int(pkt.uniq)); // pkt_uniq
        match tcp {
            Some(t) => {
                row.push(int(u64::from(t.seq))); // tcpseq
                row.push(int(u64::from(t.ack))); // tcpack
                row.push(int(u64::from(t.flags.0))); // tcpflags
                row.push(int(u64::from(t.window))); // tcpwin
            }
            None => {
                row.push(Value::Int(0));
                row.push(Value::Int(0));
                row.push(Value::Int(0));
                row.push(Value::Int(0));
            }
        }
        row.push(int(u64::from(h.tcp_payload_len()))); // payload_len
        row.push(int(u64::from(match &h.l4 {
            L4Header::Udp(u) => u.length,
            _ => 0,
        }))); // udplen
        // Metadata columns.
        row.push(Value::Int(i64::from(self.qid)));
        row.push(Value::Int(nanos_to_i64(self.tin)));
        row.push(Value::Int(nanos_to_i64(self.tout)));
        row.push(Value::Int(i64::from(self.qsize)));
        row.push(Value::Int(i64::from(self.qout)));
        row.push(Value::Int(self.path as i64));
    }

    /// Number of base-schema columns a row holds.
    #[must_use]
    pub fn row_width() -> usize {
        HeaderField::ALL.len() + META_COLUMNS.len()
    }

    /// Materialize only the columns named by `mask` (bit `i` = column `i`
    /// of the base schema), leaving the rest of the buffer untouched.
    ///
    /// This is the compiled dataplane's row writer: a query program knows at
    /// compile time which base columns it reads, so the per-record row
    /// materialization skips the other ~20. The buffer is sized (and
    /// zero-filled) on first use; unmasked cells may hold stale values from
    /// earlier records, which is sound exactly because the caller's mask
    /// covers every column its programs read. Column order matches
    /// [`QueueRecord::write_row`] (asserted by test).
    pub fn write_row_masked(&self, row: &mut Vec<Value>, mask: u64) {
        let width = Self::row_width();
        debug_assert!(width <= 64, "column mask is a u64 bitmap");
        if row.len() != width {
            row.clear();
            row.resize(width, Value::Int(0));
        }
        self.write_row_masked_into(row, mask);
    }

    /// Slice form of [`QueueRecord::write_row_masked`] for callers that keep
    /// many rows in one contiguous buffer (the vectorized engine's lane
    /// matrix): `row` must already be exactly [`QueueRecord::row_width`]
    /// cells. Unmasked cells are left untouched, as in the `Vec` form.
    pub fn write_row_masked_into(&self, row: &mut [Value], mask: u64) {
        debug_assert_eq!(row.len(), Self::row_width());
        let need = |i: usize| mask & (1u64 << i) != 0;
        let pkt = &self.packet;
        let h = &pkt.headers;
        if need(0) {
            row[0] = Value::Int(i64::from(u32::from(h.ipv4.src))); // srcip
        }
        if need(1) {
            row[1] = Value::Int(i64::from(u32::from(h.ipv4.dst))); // dstip
        }
        if need(2) || need(3) {
            let (src_port, dst_port) = match &h.l4 {
                perfq_packet::L4Header::Tcp(t) => (t.src_port, t.dst_port),
                perfq_packet::L4Header::Udp(u) => (u.src_port, u.dst_port),
                perfq_packet::L4Header::Opaque => (0, 0),
            };
            if need(2) {
                row[2] = Value::Int(i64::from(src_port)); // srcport
            }
            if need(3) {
                row[3] = Value::Int(i64::from(dst_port)); // dstport
            }
        }
        if need(4) {
            row[4] = Value::Int(i64::from(h.ipv4.proto.to_u8())); // proto
        }
        if need(5) {
            row[5] = Value::Int(i64::from(h.ipv4.ttl)); // ttl
        }
        if need(6) {
            row[6] = Value::Int(i64::from(h.ipv4.ident)); // ipid
        }
        if need(7) {
            row[7] = Value::Int(i64::from(h.ipv4.dscp_ecn)); // tos
        }
        if need(8) {
            row[8] = Value::Int(i64::from(pkt.wire_len)); // pkt_len
        }
        if need(9) {
            row[9] = Value::Int(pkt.uniq as i64); // pkt_uniq
        }
        if mask & (0b1111 << 10) != 0 {
            let (seq, ack, flags, window) = match &h.l4 {
                perfq_packet::L4Header::Tcp(t) => {
                    (i64::from(t.seq), i64::from(t.ack), i64::from(t.flags.0), i64::from(t.window))
                }
                _ => (0, 0, 0, 0),
            };
            if need(10) {
                row[10] = Value::Int(seq); // tcpseq
            }
            if need(11) {
                row[11] = Value::Int(ack); // tcpack
            }
            if need(12) {
                row[12] = Value::Int(flags); // tcpflags
            }
            if need(13) {
                row[13] = Value::Int(window); // tcpwin
            }
        }
        if need(14) {
            row[14] = Value::Int(i64::from(h.tcp_payload_len())); // payload_len
        }
        if need(15) {
            row[15] = Value::Int(i64::from(match &h.l4 {
                perfq_packet::L4Header::Udp(u) => u.length,
                _ => 0,
            })); // udplen
        }
        if need(16) {
            row[16] = Value::Int(i64::from(self.qid));
        }
        if need(17) {
            row[17] = Value::Int(nanos_to_i64(self.tin));
        }
        if need(18) {
            row[18] = Value::Int(nanos_to_i64(self.tout));
        }
        if need(19) {
            row[19] = Value::Int(i64::from(self.qsize));
        }
        if need(20) {
            row[20] = Value::Int(i64::from(self.qout));
        }
        if need(21) {
            row[21] = Value::Int(self.path as i64);
        }
    }
}

/// [`crate::spsc::RingItem`]: a [`QueueRecord`] crosses the sharded
/// dataplane's lock-free ring as 13 fixed `u64` words. The packing is an
/// exact bijection over every reachable record (all header fields, packet
/// metadata, and queue observations round-trip bit-identically — pinned by
/// the tests below), so the worker shard folds exactly the record the
/// network produced.
impl crate::spsc::RingItem for QueueRecord {
    const WORDS: usize = 13;

    fn encode(&self, out: &mut [u64]) {
        use perfq_packet::{L4Header, MacAddr};
        fn mac_word(m: &MacAddr) -> u64 {
            m.0.iter()
                .enumerate()
                .fold(0u64, |w, (i, b)| w | u64::from(*b) << (8 * i))
        }
        let h = &self.packet.headers;
        let (l4_tag, w4, w5) = match &h.l4 {
            L4Header::Opaque => (0u64, 0, 0),
            L4Header::Tcp(t) => (
                1,
                u64::from(t.src_port) | u64::from(t.dst_port) << 16 | u64::from(t.seq) << 32,
                u64::from(t.ack) | u64::from(t.flags.0) << 32 | u64::from(t.window) << 40,
            ),
            L4Header::Udp(u) => (
                2,
                u64::from(u.src_port) | u64::from(u.dst_port) << 16 | u64::from(u.length) << 32,
                0,
            ),
        };
        out[0] = mac_word(&h.eth.dst) | u64::from(h.eth.ethertype.to_u16()) << 48;
        out[1] = mac_word(&h.eth.src)
            | u64::from(h.ipv4.dscp_ecn) << 48
            | u64::from(h.ipv4.ttl) << 56;
        out[2] = u64::from(h.ipv4.total_len)
            | u64::from(h.ipv4.ident) << 16
            | u64::from(h.ipv4.flags_frag) << 32
            | u64::from(h.ipv4.proto.to_u8()) << 48
            | l4_tag << 56;
        out[3] = u64::from(u32::from(h.ipv4.src)) | u64::from(u32::from(h.ipv4.dst)) << 32;
        out[4] = w4;
        out[5] = w5;
        out[6] = self.packet.uniq;
        out[7] = self.packet.arrival.0;
        out[8] = self.tin.0;
        out[9] = self.tout.0;
        out[10] = u64::from(self.qid) | u64::from(self.qsize) << 32;
        out[11] = u64::from(self.qout) | u64::from(self.packet.wire_len) << 32;
        out[12] = self.path;
    }

    fn decode(w: &[u64]) -> Self {
        use perfq_packet::{
            EtherType, EthernetHeader, IpProto, Ipv4Header, L4Header, MacAddr, Packet,
            PacketHeaders, TcpFlags, TcpHeader, UdpHeader,
        };
        use std::net::Ipv4Addr;
        fn word_mac(w: u64) -> MacAddr {
            let mut m = [0u8; 6];
            for (i, b) in m.iter_mut().enumerate() {
                *b = (w >> (8 * i)) as u8;
            }
            MacAddr(m)
        }
        let l4 = match w[2] >> 56 {
            0 => L4Header::Opaque,
            1 => L4Header::Tcp(TcpHeader {
                src_port: w[4] as u16,
                dst_port: (w[4] >> 16) as u16,
                seq: (w[4] >> 32) as u32,
                ack: w[5] as u32,
                flags: TcpFlags((w[5] >> 32) as u8),
                window: (w[5] >> 40) as u16,
            }),
            2 => L4Header::Udp(UdpHeader {
                src_port: w[4] as u16,
                dst_port: (w[4] >> 16) as u16,
                length: (w[4] >> 32) as u16,
            }),
            tag => unreachable!("invalid L4 tag {tag} in ring word"),
        };
        QueueRecord {
            packet: Packet {
                headers: PacketHeaders {
                    eth: EthernetHeader {
                        dst: word_mac(w[0]),
                        src: word_mac(w[1]),
                        ethertype: EtherType::from_u16((w[0] >> 48) as u16),
                    },
                    ipv4: Ipv4Header {
                        dscp_ecn: (w[1] >> 48) as u8,
                        total_len: w[2] as u16,
                        ident: (w[2] >> 16) as u16,
                        flags_frag: (w[2] >> 32) as u16,
                        ttl: (w[1] >> 56) as u8,
                        proto: IpProto::from_u8((w[2] >> 48) as u8),
                        src: Ipv4Addr::from(w[3] as u32),
                        dst: Ipv4Addr::from((w[3] >> 32) as u32),
                    },
                    l4,
                },
                wire_len: (w[11] >> 32) as u16,
                uniq: w[6],
                arrival: Nanos(w[7]),
            },
            qid: w[10] as u32,
            tin: Nanos(w[8]),
            tout: Nanos(w[9]),
            qsize: (w[10] >> 32) as u32,
            qout: w[11] as u32,
            path: w[12],
        }
    }
}

/// Clamp a simulation timestamp into the query layer's integer domain,
/// mapping the drop sentinel onto `infinity`.
#[must_use]
pub fn nanos_to_i64(t: Nanos) -> i64 {
    if t.is_infinite() {
        INFINITY_NS
    } else {
        i64::try_from(t.as_nanos()).unwrap_or(INFINITY_NS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfq_lang::schema::base_schema;
    use perfq_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn record() -> QueueRecord {
        QueueRecord {
            packet: PacketBuilder::tcp()
                .src(Ipv4Addr::new(10, 0, 0, 1), 1000)
                .dst(Ipv4Addr::new(10, 0, 0, 2), 80)
                .seq(7)
                .payload_len(100)
                .uniq(3)
                .build(),
            qid: 5,
            tin: Nanos(100),
            tout: Nanos(250),
            qsize: 4,
            qout: 2,
            path: 9,
        }
    }

    #[test]
    fn row_aligns_with_base_schema() {
        let schema = base_schema();
        let row = record().to_row();
        assert_eq!(row.len(), schema.len());
        let at = |name: &str| row[schema.index_of(name).unwrap()];
        assert_eq!(at("qid"), Value::Int(5));
        assert_eq!(at("tin"), Value::Int(100));
        assert_eq!(at("tout"), Value::Int(250));
        assert_eq!(at("qsize"), Value::Int(4));
        assert_eq!(at("qin"), Value::Int(4)); // alias
        assert_eq!(at("qout"), Value::Int(2));
        assert_eq!(at("pkt_path"), Value::Int(9));
        assert_eq!(at("tcpseq"), Value::Int(7));
        assert_eq!(at("srcport"), Value::Int(1000));
        assert_eq!(at("pkt_uniq"), Value::Int(3));
    }

    #[test]
    fn write_row_matches_field_extract_for_all_l4_kinds() {
        // The specialized row writer must agree with the per-field extract
        // path, column for column, for TCP and UDP packets alike.
        let tcp = record();
        let udp = QueueRecord {
            packet: PacketBuilder::udp()
                .src(Ipv4Addr::new(10, 0, 0, 9), 53)
                .dst(Ipv4Addr::new(10, 0, 0, 8), 5353)
                .payload_len(77)
                .uniq(11)
                .build(),
            ..record()
        };
        for r in [tcp, udp] {
            let row = r.to_row();
            for (i, f) in HeaderField::ALL.iter().enumerate() {
                assert_eq!(
                    row[i],
                    Value::Int(f.extract(&r.packet) as i64),
                    "column {} ({})",
                    i,
                    f.name()
                );
            }
        }
    }

    #[test]
    fn masked_rows_match_full_rows_on_masked_columns() {
        let tcp = record();
        let udp = QueueRecord {
            packet: PacketBuilder::udp()
                .src(Ipv4Addr::new(10, 0, 0, 9), 53)
                .dst(Ipv4Addr::new(10, 0, 0, 8), 5353)
                .payload_len(77)
                .uniq(11)
                .build(),
            ..record()
        };
        let width = QueueRecord::row_width();
        for r in [tcp, udp] {
            let full = r.to_row();
            assert_eq!(full.len(), width);
            // Every single-column mask agrees with the full row.
            for i in 0..width {
                let mut row = Vec::new();
                r.write_row_masked(&mut row, 1u64 << i);
                assert_eq!(row[i], full[i], "column {i}");
            }
            // A mixed mask over a dirty buffer only touches masked cells.
            let mask = (1 << 0) | (1 << 4) | (1 << 10) | (1 << 18);
            let mut row = vec![Value::Int(-7); width];
            r.write_row_masked(&mut row, mask);
            for i in 0..width {
                if mask & (1 << i) != 0 {
                    assert_eq!(row[i], full[i], "masked column {i}");
                } else {
                    assert_eq!(row[i], Value::Int(-7), "unmasked column {i} touched");
                }
            }
        }
    }

    #[test]
    fn drops_map_to_infinity() {
        let mut r = record();
        r.tout = Nanos::INFINITY;
        assert!(r.is_drop());
        assert!(r.delay().is_infinite());
        let schema = base_schema();
        let row = r.to_row();
        assert_eq!(row[schema.index_of("tout").unwrap()], Value::Int(INFINITY_NS));
    }

    #[test]
    fn delay_is_tout_minus_tin() {
        assert_eq!(record().delay(), Nanos(150));
    }

    #[test]
    fn ring_encoding_round_trips_exactly() {
        use crate::spsc::RingItem;
        let tcp = record();
        let udp = QueueRecord {
            packet: PacketBuilder::udp()
                .src(Ipv4Addr::new(10, 0, 0, 9), 53)
                .dst(Ipv4Addr::new(10, 0, 0, 8), 5353)
                .payload_len(77)
                .uniq(11)
                .build(),
            ..record()
        };
        let drop = QueueRecord {
            tout: Nanos::INFINITY,
            qout: 0,
            ..record()
        };
        for r in [tcp, udp, drop] {
            let mut words = [0u64; QueueRecord::WORDS];
            r.encode(&mut words);
            assert_eq!(QueueRecord::decode(&words), r, "ring round-trip");
        }
    }

    #[test]
    fn path_extension_is_order_sensitive() {
        let a = QueueRecord::extend_path(QueueRecord::extend_path(0, 1), 2);
        let b = QueueRecord::extend_path(QueueRecord::extend_path(0, 2), 1);
        assert_ne!(a, b);
        assert_ne!(QueueRecord::extend_path(0, 0), 0, "qid 0 must still mark the path");
    }
}
