//! Fixed-capacity single-producer / single-consumer record queues.
//!
//! The sharded dataplane pins one worker core per key-hash shard; the
//! producer (the network event loop) routes each [`crate::QueueRecord`] to
//! its shard's queue. Hardware telemetry pipelines use exactly this shape —
//! a bounded ring per consumer with backpressure — so the queue here is
//! deliberately *fixed capacity*: when a shard falls behind, the producer
//! blocks rather than buffering unboundedly (§3.2's eviction-rate argument
//! assumes the collection path keeps up on average, not at every instant).
//!
//! The implementation is a mutex-guarded ring with condvar wakeups rather
//! than a lock-free ring (the workspace forbids `unsafe`); both sides move
//! records in **batches**, so the lock is taken once per few hundred records
//! and the synchronization cost stays far below the per-record processing
//! cost it feeds.
//!
//! Dropping the [`Sender`] closes the channel: the consumer drains what
//! remains and then observes end-of-stream. Dropping the [`Receiver`] makes
//! further sends fail fast with [`SendError`], so a crashed worker
//! backpressures into an error instead of a deadlock.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned when sending into a channel whose receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spsc receiver disconnected")
    }
}

impl std::error::Error for SendError {}

#[derive(Debug)]
struct Shared<T> {
    queue: Mutex<State<T>>,
    /// Producer waits here while the ring is full.
    not_full: Condvar,
    /// Consumer waits here while the ring is empty.
    not_empty: Condvar,
}

#[derive(Debug)]
struct State<T> {
    ring: VecDeque<T>,
    capacity: usize,
    sender_alive: bool,
    receiver_alive: bool,
}

/// The producing half of a bounded SPSC channel.
#[derive(Debug)]
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half of a bounded SPSC channel.
#[derive(Debug)]
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded SPSC channel holding at most `capacity` elements.
#[must_use]
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "spsc capacity must be positive");
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            sender_alive: true,
            receiver_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send one element, blocking while the ring is full.
    pub fn send(&self, item: T) -> Result<(), SendError> {
        let mut state = self.shared.queue.lock().expect("spsc lock poisoned");
        loop {
            if !state.receiver_alive {
                return Err(SendError);
            }
            if state.ring.len() < state.capacity {
                state.ring.push_back(item);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("spsc lock poisoned");
        }
    }

    /// Drain `batch` into the ring, blocking for space as needed. The batch
    /// is emptied on success (elements are moved out in order); on a
    /// disconnected receiver the unsent remainder stays in `batch`.
    ///
    /// One lock acquisition moves as many elements as fit, so the per-record
    /// synchronization cost is `O(1/batch_len)` locks.
    pub fn send_all(&self, batch: &mut Vec<T>) -> Result<(), SendError> {
        let mut sent_any = false;
        let mut state = self.shared.queue.lock().expect("spsc lock poisoned");
        while !batch.is_empty() {
            if !state.receiver_alive {
                return Err(SendError);
            }
            let space = state.capacity - state.ring.len();
            if space == 0 {
                if sent_any {
                    self.shared.not_empty.notify_one();
                    sent_any = false;
                }
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .expect("spsc lock poisoned");
                continue;
            }
            let take = space.min(batch.len());
            state.ring.extend(batch.drain(..take));
            sent_any = true;
        }
        drop(state);
        if sent_any {
            self.shared.not_empty.notify_one();
        }
        Ok(())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("spsc lock poisoned");
        state.sender_alive = false;
        drop(state);
        self.shared.not_empty.notify_one();
    }
}

impl<T> Receiver<T> {
    /// Receive up to `max` elements into `out` (appended), blocking until at
    /// least one element is available or the channel is closed and drained.
    /// Returns the number received; 0 means end-of-stream (so `max` must be
    /// positive — a zero `max` could return 0 on an open channel and fake
    /// end-of-stream to the caller).
    pub fn recv_many(&self, out: &mut Vec<T>, max: usize) -> usize {
        assert!(max > 0, "recv_many needs a positive max");
        let mut state = self.shared.queue.lock().expect("spsc lock poisoned");
        loop {
            if !state.ring.is_empty() {
                let take = max.min(state.ring.len());
                out.extend(state.ring.drain(..take));
                drop(state);
                self.shared.not_full.notify_one();
                return take;
            }
            if !state.sender_alive {
                return 0;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("spsc lock poisoned");
        }
    }

    /// Receive one element, or `None` at end-of-stream.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.queue.lock().expect("spsc lock poisoned");
        loop {
            if let Some(item) = state.ring.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if !state.sender_alive {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("spsc lock poisoned");
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("spsc lock poisoned");
        state.receiver_alive = false;
        drop(state);
        self.shared.not_full.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = channel::<u64>(4);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while rx.recv_many(&mut got, 3) > 0 {}
            got
        });
        let mut batch: Vec<u64> = (0..1000).collect();
        tx.send_all(&mut batch).unwrap();
        assert!(batch.is_empty());
        drop(tx);
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn capacity_backpressures_without_loss() {
        // Tiny ring, slow consumer: every element still arrives exactly once.
        let (tx, rx) = channel::<u64>(2);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                let n = rx.recv_many(&mut got, 1);
                if n == 0 {
                    break;
                }
                thread::yield_now();
            }
            got
        });
        for i in 0..500 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(consumer.join().unwrap(), (0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn sender_drop_closes_stream() {
        let (tx, rx) = channel::<u64>(8);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), None);
        let mut buf = Vec::new();
        assert_eq!(rx.recv_many(&mut buf, 16), 0);
    }

    #[test]
    fn receiver_drop_errors_sends() {
        let (tx, rx) = channel::<u64>(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError));
        let mut batch = vec![1, 2, 3];
        assert_eq!(tx.send_all(&mut batch), Err(SendError));
    }

    #[test]
    fn send_all_larger_than_capacity_interleaves() {
        let (tx, rx) = channel::<u64>(3);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while rx.recv_many(&mut got, 2) > 0 {}
            got
        });
        let mut batch: Vec<u64> = (0..100).collect();
        tx.send_all(&mut batch).unwrap();
        drop(tx);
        assert_eq!(consumer.join().unwrap(), (0..100).collect::<Vec<u64>>());
    }
}
