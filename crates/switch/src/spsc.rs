//! Fixed-capacity single-producer / single-consumer record queues.
//!
//! The sharded dataplane pins one worker core per key-hash shard; the
//! producer (the network event loop) routes each [`crate::QueueRecord`] to
//! its shard's queue. Hardware telemetry pipelines use exactly this shape —
//! a bounded ring per consumer with backpressure — so the queue here is
//! deliberately *fixed capacity*: when a shard falls behind, the producer
//! blocks rather than buffering unboundedly (§3.2's eviction-rate argument
//! assumes the collection path keeps up on average, not at every instant).
//!
//! # A lock-free ring without `unsafe`
//!
//! The implementation is a cache-line-padded atomic head/tail ring — the
//! classic Lamport SPSC queue with batched publication — built entirely
//! from safe primitives. The workspace forbids `unsafe`, which rules out
//! the textbook `UnsafeCell<MaybeUninit<T>>` slot array; instead, elements
//! are **word-encoded**: [`RingItem`] fixes each `T` at a constant number
//! of `u64` words, and the ring is one flat `Box<[AtomicU64]>`. Slot words
//! are written and read with `Relaxed` ordering; the *only* synchronization
//! is one `Release` store of the producer's `tail` per published batch and
//! one `Release` store of the consumer's `head` per consumed batch, each
//! `Acquire`-loaded by the peer. That pair of edges makes every slot write
//! happen-before the read that consumes it, and every read happen-before
//! the overwrite that recycles the slot.
//!
//! Per-record cost beyond the copy itself is therefore `O(1/batch_len)`
//! shared-line traffic: both sides keep a **cached copy of the peer's
//! index** and only touch the shared counter when the ring looks full
//! (producer) or empty (consumer). Waiting sides climb a three-tier
//! ladder: `spin_loop` with exponential backoff (cheapest when the peer
//! runs on another core), then `yield_now`, then **park** — the waiter
//! registers its thread handle and calls `thread::park_timeout`, and the
//! peer unparks it right after the publication store. The park tier is
//! what keeps an oversubscribed box honest: with more shards than cores, a
//! yielding waiter stays runnable and the scheduler round-robins through
//! spinners, while a parked waiter donates its entire slice to the thread
//! that can actually make progress. Lost wakeups are ruled out by a
//! Dekker-style `SeqCst` fence pair (commit-to-park re-checks the
//! condition after raising its flag; the publisher fences before reading
//! it), with the park timeout as defense in depth. There is no lock on
//! the data path — the one `Mutex` guards only the parked thread handle
//! and is touched exclusively on the cold park/unpark edges.
//!
//! Indices are monotonically increasing (wrapping) record counts; the
//! physical slot is `index & mask` over a power-of-two slot array, while
//! occupancy is capped at the exact user-requested `capacity`, preserving
//! precise backpressure for non-power-of-two capacities.
//!
//! Dropping the [`Sender`] closes the channel: the consumer drains what
//! remains and then observes end-of-stream. Dropping the [`Receiver`] makes
//! further sends fail fast with [`SendError`], so a crashed worker
//! backpressures into an error instead of a deadlock. Either drop also
//! **permanently closes the peer's parking slot** — the `Drop` impls run
//! during a panic unwind too, so a worker that dies mid-run unparks a
//! blocked producer immediately and bars it from ever parking again;
//! liveness after a peer death rests on this closed flag, not on the park
//! timeout.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Error returned when sending into a channel whose receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spsc receiver disconnected")
    }
}

impl std::error::Error for SendError {}

/// Upper bound on [`RingItem::WORDS`] — sizes the stack encode/decode
/// buffer (stable Rust cannot yet size it by the associated const).
pub const MAX_RING_WORDS: usize = 16;

/// A fixed-width element of the lock-free ring: encoded to and decoded
/// from a constant number of `u64` words.
///
/// `decode(encode(x))` must reproduce `x` exactly — the sharded dataplane
/// depends on records crossing the ring bit-identically (pinned by the
/// round-trip tests in `record.rs`).
pub trait RingItem: Sized {
    /// Encoded width in `u64` words (`1..=MAX_RING_WORDS`).
    const WORDS: usize;

    /// Write `self` into exactly [`Self::WORDS`] words.
    fn encode(&self, out: &mut [u64]);

    /// Reconstruct from exactly [`Self::WORDS`] words.
    fn decode(words: &[u64]) -> Self;
}

impl RingItem for u64 {
    const WORDS: usize = 1;

    fn encode(&self, out: &mut [u64]) {
        out[0] = *self;
    }

    fn decode(words: &[u64]) -> Self {
        words[0]
    }
}

/// One shared counter on its own cache line, so producer and consumer
/// publication stores never false-share.
#[derive(Debug)]
#[repr(align(64))]
struct CachePadded(AtomicUsize);

/// Insurance against a wakeup lost to a scenario the fences don't cover
/// (there should be none): a parked side re-checks its condition at least
/// this often regardless. Long enough that an idle parked worker does not
/// meaningfully poll, short enough to bound the damage of a hypothetical
/// missed wakeup.
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

/// One side's parking slot. The flag is the Dekker variable; the handle is
/// only ever touched while committing to park or delivering a wakeup.
#[derive(Debug, Default)]
struct Waiter {
    /// True from commit-to-park until the owner wakes (or the peer claims
    /// the wakeup).
    parked: AtomicBool,
    /// Permanently true once the peer half is gone (its `Drop` ran —
    /// normally or mid-panic-unwind). The owner checks it in the
    /// park/backoff loop and never parks again: liveness after a peer
    /// death is guaranteed by this flag, not by the park timeout.
    closed: AtomicBool,
    /// The parked thread's handle, for `Thread::unpark`.
    thread: Mutex<Option<std::thread::Thread>>,
}

impl Waiter {
    /// Whether the peer half is gone (no wakeups will ever arrive again).
    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Commit-to-park: register the current thread, raise the flag, then
    /// re-verify the wait condition under a `SeqCst` fence — if `not_ready`
    /// still holds, park (bounded by [`PARK_TIMEOUT`]). The fence pairs
    /// with the one in [`Waiter::wake`]: either this side observes the
    /// peer's publication, or the peer observes the raised flag. A closed
    /// waiter never parks: its peer can no longer deliver a wakeup, so
    /// the caller's loop must re-check its exit condition instead.
    fn park_if(&self, not_ready: impl FnOnce() -> bool) {
        if self.is_closed() {
            return;
        }
        *self.thread.lock().expect("waiter handle lock") = Some(std::thread::current());
        self.parked.store(true, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        if not_ready() && !self.is_closed() {
            std::thread::park_timeout(PARK_TIMEOUT);
        }
        self.parked.store(false, Ordering::Relaxed);
    }

    /// Close the slot on behalf of a dying peer: raise the permanent flag,
    /// then deliver one final wakeup so an already-parked owner re-checks
    /// immediately. Called from the `Drop` impls (which also run during a
    /// panic unwind — a crashed shard worker closes its producer's slot on
    /// the way down instead of leaving it parked).
    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.wake();
    }

    /// Deliver a wakeup if the peer is parked (called by the publishing
    /// side right after its `Release` store, and by the `Drop` impls after
    /// lowering an alive flag). The fast path is one relaxed load of a
    /// line that is quiescent unless the peer actually parked.
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if !self.parked.load(Ordering::Relaxed) {
            return;
        }
        if self.parked.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.thread.lock().expect("waiter handle lock").take() {
                t.unpark();
            }
        }
    }
}

#[derive(Debug)]
struct Shared {
    /// The slot array: `slot_count * words` words, slot `i` at
    /// `(i & mask) * words`.
    slots: Box<[AtomicU64]>,
    /// `slot_count − 1` (slot count is a power of two; the words-per-element
    /// factor is monomorphized into the sender/receiver via
    /// [`RingItem::WORDS`]).
    mask: usize,
    /// Maximum occupancy — the exact user-requested capacity, which may be
    /// smaller than the power-of-two slot count.
    capacity: usize,
    /// Consumer position: the next index to read. Written only by the
    /// receiver (`Release` after a consumed batch).
    head: CachePadded,
    /// Producer position: the next index to write. Written only by the
    /// sender (`Release` after a published batch).
    tail: CachePadded,
    sender_alive: AtomicBool,
    receiver_alive: AtomicBool,
    /// Parking slot for a producer blocked on a full ring (woken by the
    /// consumer's head publication).
    tx_waiter: Waiter,
    /// Parking slot for a consumer blocked on an empty ring (woken by the
    /// producer's tail publication).
    rx_waiter: Waiter,
}

/// The producing half of a bounded SPSC channel.
#[derive(Debug)]
pub struct Sender<T: RingItem> {
    shared: Arc<Shared>,
    /// Local tail — this side is its only writer, so it never re-reads the
    /// shared counter.
    tail: Cell<usize>,
    /// Cached consumer head, refreshed only when the ring looks full.
    head_cache: Cell<usize>,
    _marker: PhantomData<fn(T) -> T>,
}

/// The consuming half of a bounded SPSC channel.
#[derive(Debug)]
pub struct Receiver<T: RingItem> {
    shared: Arc<Shared>,
    /// Local head — this side is its only writer.
    head: Cell<usize>,
    /// Cached producer tail, refreshed only when the ring looks empty.
    tail_cache: Cell<usize>,
    _marker: PhantomData<fn(T) -> T>,
}

/// Create a bounded SPSC channel holding at most `capacity` elements.
#[must_use]
pub fn channel<T: RingItem>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "spsc capacity must be positive");
    assert!(
        T::WORDS > 0 && T::WORDS <= MAX_RING_WORDS,
        "RingItem::WORDS must be in 1..=MAX_RING_WORDS"
    );
    let slot_count = capacity.next_power_of_two();
    let mut slots = Vec::new();
    slots.resize_with(slot_count * T::WORDS, || AtomicU64::new(0));
    let shared = Arc::new(Shared {
        slots: slots.into_boxed_slice(),
        mask: slot_count - 1,
        capacity,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        sender_alive: AtomicBool::new(true),
        receiver_alive: AtomicBool::new(true),
        tx_waiter: Waiter::default(),
        rx_waiter: Waiter::default(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
            tail: Cell::new(0),
            head_cache: Cell::new(0),
            _marker: PhantomData,
        },
        Receiver {
            shared,
            head: Cell::new(0),
            tail_cache: Cell::new(0),
            _marker: PhantomData,
        },
    )
}

/// Whether the box exposes exactly one CPU (checked once): with a single
/// core the peer can never be running *while we wait*, so every spin cycle
/// is burnt and the ladder should reach the scheduler almost immediately.
fn single_core() -> bool {
    static ONE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ONE.get_or_init(|| std::thread::available_parallelism().is_ok_and(|n| n.get() == 1))
}

/// One rung of the wait ladder: spin briefly with exponential backoff,
/// then yield a few times, then tell the caller to park (`true`). The box
/// may have fewer cores than shards, so an unbounded spin could starve
/// the very thread being waited on — and an unbounded *yield* loop merely
/// round-robins the scheduler through every other waiter, which is why
/// the ladder ends at `park` instead. On a single-core box the spin tier
/// is skipped entirely and one yield (which usually schedules the peer
/// directly) precedes the park.
fn backoff(spins: &mut u32) -> bool {
    let (spin_rounds, yield_rounds) = if single_core() { (0, 8) } else { (6, 8) };
    if *spins < spin_rounds {
        for _ in 0..(1u32 << *spins) {
            std::hint::spin_loop();
        }
        *spins += 1;
        false
    } else if *spins < spin_rounds + yield_rounds {
        std::thread::yield_now();
        *spins += 1;
        false
    } else {
        true
    }
}

impl<T: RingItem> Sender<T> {
    /// Encode `item` into slot `idx`'s words (`Relaxed` — the batch's
    /// `Release` tail store publishes them).
    #[inline]
    fn write_slot(&self, idx: usize, item: &T) {
        let mut buf = [0u64; MAX_RING_WORDS];
        item.encode(&mut buf[..T::WORDS]);
        let base = (idx & self.shared.mask) * T::WORDS;
        for (slot, word) in self.shared.slots[base..base + T::WORDS]
            .iter()
            .zip(&buf[..T::WORDS])
        {
            slot.store(*word, Ordering::Relaxed);
        }
    }

    /// Free slots under the cached head, refreshing the cache (one shared
    /// load) only when the cached view says full.
    #[inline]
    fn free_slots(&self) -> usize {
        let used = self.tail.get().wrapping_sub(self.head_cache.get());
        if used < self.shared.capacity {
            return self.shared.capacity - used;
        }
        self.head_cache
            .set(self.shared.head.0.load(Ordering::Acquire));
        self.shared.capacity - self.tail.get().wrapping_sub(self.head_cache.get())
    }

    /// Publish the local tail (one `Release` store per batch).
    #[inline]
    fn publish(&self, new_tail: usize) {
        debug_assert!(
            new_tail.wrapping_sub(self.tail.get()) <= self.shared.capacity,
            "publish advances tail monotonically by at most capacity"
        );
        debug_assert!(
            new_tail.wrapping_sub(self.shared.head.0.load(Ordering::Relaxed))
                <= self.shared.capacity,
            "ring occupancy never exceeds capacity"
        );
        self.tail.set(new_tail);
        self.shared.tail.0.store(new_tail, Ordering::Release);
        self.shared.rx_waiter.wake();
    }

    /// Park until the consumer frees a slot (or dies). `free_slots` always
    /// re-reads the shared head while the ring looks full, so the re-check
    /// inside the commit window is fresh.
    fn park_until_free(&self) {
        self.shared.tx_waiter.park_if(|| {
            self.free_slots() == 0 && self.shared.receiver_alive.load(Ordering::Acquire)
        });
    }

    /// Send one element, blocking while the ring is full.
    pub fn send(&self, item: T) -> Result<(), SendError> {
        if !self.shared.receiver_alive.load(Ordering::Acquire) {
            return Err(SendError);
        }
        let mut spins = 0u32;
        while self.free_slots() == 0 {
            if !self.shared.receiver_alive.load(Ordering::Acquire) {
                return Err(SendError);
            }
            if backoff(&mut spins) {
                self.park_until_free();
            }
        }
        let tail = self.tail.get();
        self.write_slot(tail, &item);
        self.publish(tail.wrapping_add(1));
        Ok(())
    }

    /// Drain `batch` into the ring, blocking for space as needed. The batch
    /// is emptied on success (elements are moved out in order); on a
    /// disconnected receiver the unsent remainder stays in `batch`.
    ///
    /// As many elements as fit are written and then published with a single
    /// `Release` store, so the per-record synchronization cost is
    /// `O(1/batch_len)` shared-line transfers.
    pub fn send_all(&self, batch: &mut Vec<T>) -> Result<(), SendError> {
        if !self.shared.receiver_alive.load(Ordering::Acquire) {
            return Err(SendError);
        }
        let mut spins = 0u32;
        while !batch.is_empty() {
            let free = self.free_slots();
            if free == 0 {
                if !self.shared.receiver_alive.load(Ordering::Acquire) {
                    return Err(SendError);
                }
                if backoff(&mut spins) {
                    self.park_until_free();
                }
                continue;
            }
            spins = 0;
            let tail = self.tail.get();
            let take = free.min(batch.len());
            for (off, item) in batch.drain(..take).enumerate() {
                self.write_slot(tail.wrapping_add(off), &item);
            }
            self.publish(tail.wrapping_add(take));
        }
        Ok(())
    }
}

impl<T: RingItem> Drop for Sender<T> {
    fn drop(&mut self) {
        // `Release` so the consumer's `Acquire` load of the flag also sees
        // the final published tail. Closing the consumer's waiter both
        // wakes it now and prevents any future park — no wakeup can ever
        // arrive again from this side.
        self.shared.sender_alive.store(false, Ordering::Release);
        self.shared.rx_waiter.close();
    }
}

impl<T: RingItem> Receiver<T> {
    /// Decode slot `idx` (`Relaxed` word loads — the `Acquire` tail load
    /// that made the slot visible provides the ordering).
    #[inline]
    fn read_slot(&self, idx: usize) -> T {
        let mut buf = [0u64; MAX_RING_WORDS];
        let base = (idx & self.shared.mask) * T::WORDS;
        for (word, slot) in buf[..T::WORDS]
            .iter_mut()
            .zip(&self.shared.slots[base..base + T::WORDS])
        {
            *word = slot.load(Ordering::Relaxed);
        }
        T::decode(&buf[..T::WORDS])
    }

    /// Block until at least one element is visible; `0` means the channel
    /// is closed *and* drained (end-of-stream).
    fn wait_available(&self) -> usize {
        let head = self.head.get();
        let cached = self.tail_cache.get().wrapping_sub(head);
        if cached != 0 {
            return cached;
        }
        let mut spins = 0u32;
        loop {
            self.tail_cache
                .set(self.shared.tail.0.load(Ordering::Acquire));
            let avail = self.tail_cache.get().wrapping_sub(head);
            if avail != 0 {
                return avail;
            }
            if !self.shared.sender_alive.load(Ordering::Acquire) {
                // The flag is stored after the final publish; one re-load
                // of tail under the flag's `Acquire` edge catches a batch
                // that landed between our tail load and the flag check.
                self.tail_cache
                    .set(self.shared.tail.0.load(Ordering::Acquire));
                return self.tail_cache.get().wrapping_sub(head);
            }
            if backoff(&mut spins) {
                self.shared.rx_waiter.park_if(|| {
                    self.shared.tail.0.load(Ordering::Acquire).wrapping_sub(head) == 0
                        && self.shared.sender_alive.load(Ordering::Acquire)
                });
            }
        }
    }

    /// Consume `take` elements from the local head and publish the new head
    /// (one `Release` store per batch) so the producer can recycle slots.
    #[inline]
    fn advance(&self, take: usize) {
        let new_head = self.head.get().wrapping_add(take);
        debug_assert!(
            self.shared.tail.0.load(Ordering::Relaxed).wrapping_sub(new_head)
                < usize::MAX / 2,
            "head never overtakes tail"
        );
        self.head.set(new_head);
        self.shared.head.0.store(new_head, Ordering::Release);
        self.shared.tx_waiter.wake();
    }

    /// Receive up to `max` elements into `out` (appended), blocking until at
    /// least one element is available or the channel is closed and drained.
    /// Returns the number received; 0 means end-of-stream (so `max` must be
    /// positive — a zero `max` could return 0 on an open channel and fake
    /// end-of-stream to the caller).
    pub fn recv_many(&self, out: &mut Vec<T>, max: usize) -> usize {
        assert!(max > 0, "recv_many needs a positive max");
        let avail = self.wait_available();
        if avail == 0 {
            return 0;
        }
        let head = self.head.get();
        let take = avail.min(max);
        for off in 0..take {
            out.push(self.read_slot(head.wrapping_add(off)));
        }
        self.advance(take);
        take
    }

    /// Receive one element, or `None` at end-of-stream.
    pub fn recv(&self) -> Option<T> {
        if self.wait_available() == 0 {
            return None;
        }
        let item = self.read_slot(self.head.get());
        self.advance(1);
        Some(item)
    }
}

impl<T: RingItem> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receiver_alive.store(false, Ordering::Release);
        // A producer parked on a full ring must wake to observe the death —
        // including a death by panic (this `Drop` runs during the worker's
        // unwind). Closing rather than waking also bars any future park,
        // so the producer's error path never re-blocks on a dead consumer.
        self.shared.tx_waiter.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = channel::<u64>(4);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while rx.recv_many(&mut got, 3) > 0 {}
            got
        });
        let mut batch: Vec<u64> = (0..1000).collect();
        tx.send_all(&mut batch).unwrap();
        assert!(batch.is_empty());
        drop(tx);
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn capacity_backpressures_without_loss() {
        // Tiny ring, slow consumer: every element still arrives exactly once.
        let (tx, rx) = channel::<u64>(2);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                let n = rx.recv_many(&mut got, 1);
                if n == 0 {
                    break;
                }
                thread::yield_now();
            }
            got
        });
        for i in 0..500 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(consumer.join().unwrap(), (0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn sender_drop_closes_stream() {
        let (tx, rx) = channel::<u64>(8);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), None);
        let mut buf = Vec::new();
        assert_eq!(rx.recv_many(&mut buf, 16), 0);
    }

    #[test]
    fn receiver_drop_errors_sends() {
        let (tx, rx) = channel::<u64>(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError));
        let mut batch = vec![1, 2, 3];
        assert_eq!(tx.send_all(&mut batch), Err(SendError));
        assert_eq!(batch, vec![1, 2, 3]);
    }

    #[test]
    fn send_all_larger_than_capacity_interleaves() {
        let (tx, rx) = channel::<u64>(3);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while rx.recv_many(&mut got, 2) > 0 {}
            got
        });
        let mut batch: Vec<u64> = (0..100).collect();
        tx.send_all(&mut batch).unwrap();
        drop(tx);
        assert_eq!(consumer.join().unwrap(), (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn non_power_of_two_capacity_is_exact() {
        // Slot array rounds up to 8, but occupancy must cap at 5.
        let (tx, rx) = channel::<u64>(5);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        // A 6th send must block: run it on a thread and make sure it only
        // completes after one element is consumed.
        let t = thread::spawn(move || {
            tx.send(5).unwrap();
            drop(tx);
        });
        assert_eq!(rx.recv(), Some(0));
        t.join().unwrap();
        let mut rest = Vec::new();
        while rx.recv_many(&mut rest, 8) > 0 {}
        assert_eq!(rest, vec![1, 2, 3, 4, 5]);
    }
}
