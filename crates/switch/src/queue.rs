//! The output-queue model.
//!
//! Each switch port has one FIFO queue drained at the port's line rate. The
//! model is analytic rather than slotted: a packet arriving at `t` with
//! length `L` starts transmission at `max(t, previous departure)` and departs
//! after `L·8 / rate` — exact FIFO timing without per-cycle simulation.
//!
//! The queue produces the schema's performance metadata:
//!
//! * `tin` — the arrival time;
//! * `tout` — the computed departure time, or ∞ when the packet arrives to a
//!   full queue and is dropped (§2: "If a packet is dropped at a queue, we
//!   assign tout the value infinity");
//! * `qsize`/`qin` — occupancy seen at enqueue;
//! * `qout` — occupancy remaining at departure.
//!
//! Departure records are *released* only once simulated time passes their
//! `tout` (drops release immediately), so the record stream a query consumes
//! is ordered by observation time, like a real telemetry stream.

use crate::record::QueueRecord;
use perfq_packet::{Nanos, Packet};
use std::collections::VecDeque;

/// Counters for one queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets accepted.
    pub enqueued: u64,
    /// Packets dropped (queue full).
    pub dropped: u64,
    /// Maximum occupancy observed at enqueue.
    pub max_qsize: u32,
}

#[derive(Debug, Clone)]
struct Inflight {
    record: QueueRecord,
}

/// A FIFO output queue with finite capacity and fixed drain rate.
#[derive(Debug, Clone)]
pub struct OutputQueue {
    qid: u32,
    /// Drain rate in bits per nanosecond (= Gbit/s).
    rate_bits_per_ns: f64,
    capacity: usize,
    /// Accepted packets not yet released as records, in departure order.
    inflight: VecDeque<Inflight>,
    /// Departure time of the most recently accepted packet.
    last_departure: Nanos,
    stats: QueueStats,
}

impl OutputQueue {
    /// Create a queue. `rate_bps` is the port speed in bits/second;
    /// `capacity` is the maximum number of queued packets.
    #[must_use]
    pub fn new(qid: u32, rate_bps: f64, capacity: usize) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive");
        assert!(capacity > 0, "capacity must be positive");
        OutputQueue {
            qid,
            rate_bits_per_ns: rate_bps / 1e9,
            capacity,
            inflight: VecDeque::new(),
            last_departure: Nanos::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// The queue id.
    #[must_use]
    pub fn qid(&self) -> u32 {
        self.qid
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Transmission time of a packet at this queue's rate.
    #[must_use]
    pub fn tx_time(&self, wire_len: u16) -> Nanos {
        Nanos((f64::from(wire_len) * 8.0 / self.rate_bits_per_ns).ceil() as u64)
    }

    /// Current occupancy at time `now` (packets not yet departed).
    ///
    /// FIFO service at one rate makes `tout` non-decreasing along the
    /// deque, so the count of still-present packets is a partition point —
    /// O(log n) instead of a full scan on the per-packet enqueue path.
    #[must_use]
    pub fn occupancy(&self, now: Nanos) -> u32 {
        (self.inflight.len() - self.inflight.partition_point(|f| f.record.tout <= now)) as u32
    }

    /// Offer a packet at time `now` (arrivals must be non-decreasing in
    /// time). Returns the drop record if the queue was full, else `None`
    /// (the departure record is released later by [`OutputQueue::release`]).
    pub fn offer(&mut self, packet: Packet, now: Nanos, path: u64) -> Option<QueueRecord> {
        let qsize = self.occupancy(now);
        self.stats.max_qsize = self.stats.max_qsize.max(qsize);
        if qsize as usize >= self.capacity {
            self.stats.dropped += 1;
            return Some(QueueRecord {
                packet,
                qid: self.qid,
                tin: now,
                tout: Nanos::INFINITY,
                qsize,
                qout: 0,
                path: QueueRecord::extend_path(path, self.qid),
            });
        }
        self.stats.enqueued += 1;
        let start = now.max(self.last_departure);
        let tout = start + self.tx_time(packet.wire_len);
        self.last_departure = tout;
        self.inflight.push_back(Inflight {
            record: QueueRecord {
                packet,
                qid: self.qid,
                tin: now,
                tout,
                qsize,
                qout: 0, // filled at release
                path: QueueRecord::extend_path(path, self.qid),
            },
        });
        None
    }

    /// Release departure records whose `tout ≤ now`, with exact `qout`,
    /// handing each to `sink`. Sink-based rather than `Vec`-returning so the
    /// per-event hot path of `Network::run` allocates nothing per release.
    pub fn release(&mut self, now: Nanos, mut sink: impl FnMut(QueueRecord)) {
        while let Some(front) = self.inflight.front() {
            let tout = front.record.tout;
            if tout > now {
                break;
            }
            let mut rec = self.inflight.pop_front().expect("front exists").record;
            // Occupancy at departure: packets already enqueued (tin < tout)
            // and still present (their tout > this one's — FIFO order means
            // all remaining entries qualify on departure order). Arrivals
            // are non-decreasing, so the count is a partition point.
            rec.qout = self.inflight.partition_point(|f| f.record.tin < tout) as u32;
            sink(rec);
        }
    }

    /// Release everything regardless of time (end of simulation).
    pub fn flush(&mut self, sink: impl FnMut(QueueRecord)) {
        self.release(Nanos::INFINITY, sink);
    }

    /// Departure time of the last accepted packet (next packet's earliest
    /// start of service).
    #[must_use]
    pub fn horizon(&self) -> Nanos {
        self.last_departure
    }

    /// Departure time of the oldest unreleased packet, if any — the
    /// earliest time at which [`OutputQueue::release`] would produce a
    /// record (`Switch` caches the minimum across its queues to skip
    /// release scans entirely between departures).
    #[must_use]
    pub fn next_release(&self) -> Option<Nanos> {
        self.inflight.front().map(|f| f.record.tout)
    }

    /// Return the queue to its just-built state: no inflight packets, an
    /// idle port, and zeroed statistics. [`crate::Network::run`] calls this
    /// at the start of every run so a reused network behaves identically to
    /// a fresh one.
    pub fn reset(&mut self) {
        self.inflight.clear();
        self.last_departure = Nanos::ZERO;
        self.stats = QueueStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfq_packet::PacketBuilder;

    /// 1000-byte packets at 8 Gbit/s: exactly 1000 ns of transmission each.
    fn queue() -> OutputQueue {
        OutputQueue::new(1, 8e9, 4)
    }

    /// Collect-into-Vec shims over the sink API (test convenience).
    fn release_at(q: &mut OutputQueue, now: Nanos) -> Vec<QueueRecord> {
        let mut out = Vec::new();
        q.release(now, |r| out.push(r));
        out
    }

    fn flush_all(q: &mut OutputQueue) -> Vec<QueueRecord> {
        release_at(q, Nanos::INFINITY)
    }

    fn pkt(uniq: u64) -> Packet {
        // payload 946 → wire length 1000 bytes.
        PacketBuilder::tcp().payload_len(946).uniq(uniq).build()
    }

    #[test]
    fn empty_queue_has_immediate_service() {
        let mut q = queue();
        assert!(q.offer(pkt(1), Nanos(0), 0).is_none());
        let recs = flush_all(&mut q);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].tin, Nanos(0));
        assert_eq!(recs[0].tout, Nanos(1000));
        assert_eq!(recs[0].qsize, 0);
        assert_eq!(recs[0].qout, 0);
    }

    #[test]
    fn back_to_back_packets_queue_up() {
        let mut q = queue();
        q.offer(pkt(1), Nanos(0), 0);
        q.offer(pkt(2), Nanos(100), 0);
        q.offer(pkt(3), Nanos(200), 0);
        let recs = flush_all(&mut q);
        assert_eq!(recs[0].tout, Nanos(1000));
        assert_eq!(recs[1].tout, Nanos(2000)); // waits for pkt 1
        assert_eq!(recs[2].tout, Nanos(3000));
        assert_eq!(recs[0].qsize, 0);
        assert_eq!(recs[1].qsize, 1);
        assert_eq!(recs[2].qsize, 2);
        // Departure occupancies: pkt1 leaves 2 behind, pkt3 leaves none.
        assert_eq!(recs[0].qout, 2);
        assert_eq!(recs[1].qout, 1);
        assert_eq!(recs[2].qout, 0);
    }

    #[test]
    fn queueing_delay_accumulates() {
        let mut q = queue();
        for i in 0..4u64 {
            q.offer(pkt(i), Nanos(0), 0);
        }
        let recs = flush_all(&mut q);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.delay(), Nanos(1000 * (i as u64 + 1)));
        }
    }

    #[test]
    fn overflow_drops_with_infinite_tout() {
        let mut q = queue();
        for i in 0..4u64 {
            assert!(q.offer(pkt(i), Nanos(0), 0).is_none());
        }
        let drop = q.offer(pkt(99), Nanos(0), 0).expect("queue full");
        assert!(drop.is_drop());
        assert_eq!(drop.qsize, 4);
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.stats().enqueued, 4);
    }

    #[test]
    fn idle_gap_resets_queue() {
        let mut q = queue();
        q.offer(pkt(1), Nanos(0), 0);
        // Long idle gap: queue fully drains.
        q.offer(pkt(2), Nanos(10_000), 0);
        let recs = flush_all(&mut q);
        assert_eq!(recs[1].qsize, 0);
        assert_eq!(recs[1].tout, Nanos(11_000));
    }

    #[test]
    fn release_respects_time() {
        let mut q = queue();
        q.offer(pkt(1), Nanos(0), 0);
        q.offer(pkt(2), Nanos(0), 0);
        assert!(release_at(&mut q, Nanos(999)).is_empty());
        let first = release_at(&mut q, Nanos(1000));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].packet.uniq, 1);
        let second = release_at(&mut q, Nanos(5000));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].packet.uniq, 2);
    }

    #[test]
    fn occupancy_reflects_departures() {
        let mut q = queue();
        q.offer(pkt(1), Nanos(0), 0);
        q.offer(pkt(2), Nanos(0), 0);
        assert_eq!(q.occupancy(Nanos(500)), 2);
        assert_eq!(q.occupancy(Nanos(1500)), 1);
        assert_eq!(q.occupancy(Nanos(2500)), 0);
    }

    #[test]
    fn max_qsize_tracked() {
        let mut q = queue();
        for i in 0..4u64 {
            q.offer(pkt(i), Nanos(0), 0);
        }
        assert_eq!(q.stats().max_qsize, 3);
    }

    #[test]
    fn path_is_extended() {
        let mut q = queue();
        q.offer(pkt(1), Nanos(0), 7);
        let recs = flush_all(&mut q);
        assert_eq!(recs[0].path, QueueRecord::extend_path(7, 1));
    }

    #[test]
    fn tx_time_scales_with_length() {
        let q = OutputQueue::new(0, 10e9, 8); // 10 Gbit/s
        assert_eq!(q.tx_time(1250), Nanos(1000)); // 10_000 bits / 10 bits-per-ns
        assert_eq!(q.tx_time(125), Nanos(100));
    }
}
