//! Multi-switch networks.
//!
//! The paper's queries span "every network queue" — per-flow end-to-end
//! latency sums over multiple queues, and incast localization needs a fabric
//! where many sources converge on one egress. This module provides the three
//! topologies the examples and tests use:
//!
//! * **Single** — one switch; the evaluation's configuration;
//! * **Linear(n)** — a chain, for multi-hop latency accumulation;
//! * **LeafSpine** — a 2-tier Clos fabric with ECMP-style flow hashing, for
//!   the incast scenario.
//!
//! Execution is event-driven: an event is a packet's arrival at a switch;
//! accepted packets schedule their next-hop arrival at
//! `tout + link_latency` (departure times are known analytically from the
//! queue model). Records stream to the caller's sink roughly in observation
//! order; per-queue order is exact.

use crate::record::QueueRecord;
use crate::spsc;
use crate::switch::{Forwarded, Switch, SwitchConfig};
use perfq_kvstore::hash::hash_key;
use perfq_packet::{Nanos, Packet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

/// Network shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// One switch; output port by destination hash.
    Single,
    /// A chain of `n` switches; every packet traverses all of them.
    Linear(usize),
    /// A 2-tier Clos: `leaves` leaf switches, `spines` spine switches.
    /// Hosts hash onto leaves by address; inter-leaf flows cross one spine
    /// picked by 5-tuple hash (ECMP).
    LeafSpine {
        /// Number of leaf switches.
        leaves: usize,
        /// Number of spine switches.
        spines: usize,
    },
}

/// Network configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Topology.
    pub topology: Topology,
    /// Per-switch configuration.
    pub switch: SwitchConfig,
    /// Propagation + processing latency between switches.
    pub link_latency: Nanos,
    /// Seed for the (deterministic) routing hashes.
    pub routing_seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            topology: Topology::Single,
            switch: SwitchConfig::default(),
            link_latency: Nanos::from_micros(1),
            routing_seed: 0x5157_17c4,
        }
    }
}

/// A simulated network.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetworkConfig,
    switches: Vec<Switch>,
    /// Pooled storage of the event heap: kept across runs so steady-state
    /// replay never grows a fresh heap (zero allocations per packet).
    heap_scratch: Vec<Reverse<Ev>>,
    /// Reusable per-event route buffer (topologies with unbounded hop
    /// counts — `Linear(n)` — rule out a fixed-size array).
    route_scratch: Vec<Hop>,
    /// Reusable batch buffer for [`Network::run_batched`].
    batch_scratch: Vec<QueueRecord>,
}

/// One hop of a packet's route: (switch index, output port).
type Hop = (usize, usize);

#[derive(Debug, Clone)]
struct Ev {
    time: Nanos,
    seq: u64,
    hop: u8,
    path: u64,
    packet: Packet,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl Network {
    /// Build a network.
    #[must_use]
    pub fn new(cfg: NetworkConfig) -> Self {
        let n_switches = match cfg.topology {
            Topology::Single => 1,
            Topology::Linear(n) => n.max(1),
            Topology::LeafSpine { leaves, spines } => {
                assert!(leaves > 0 && spines > 0, "need leaves and spines");
                leaves + spines
            }
        };
        // Leaf-spine needs enough ports: leaves face spines + hosts, spines
        // face leaves.
        if let Topology::LeafSpine { leaves, spines } = cfg.topology {
            assert!(
                cfg.switch.ports >= spines + 1 && cfg.switch.ports >= leaves,
                "switch needs ≥ {} ports for this fabric",
                spines.max(leaves)
            );
        }
        Network {
            cfg,
            switches: (0..n_switches)
                .map(|i| Switch::new(i as u32, &cfg.switch))
                .collect(),
            heap_scratch: Vec::new(),
            route_scratch: Vec::new(),
            batch_scratch: Vec::new(),
        }
    }

    /// The switches (for stats inspection).
    #[must_use]
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// Total drops across all queues.
    #[must_use]
    pub fn total_drops(&self) -> u64 {
        self.switches
            .iter()
            .flat_map(|s| s.stats())
            .map(|(_, st)| st.dropped)
            .sum()
    }

    fn hash_ip(&self, ip: Ipv4Addr, modulus: usize) -> usize {
        (hash_key(self.cfg.routing_seed, &u32::from(ip)) % modulus as u64) as usize
    }

    /// The route a packet takes, as (switch, out-port) hops.
    #[must_use]
    pub fn route(&self, packet: &Packet) -> Vec<Hop> {
        let mut hops = Vec::new();
        self.route_into(packet, &mut hops);
        hops
    }

    /// Compute a packet's route into a reusable buffer (cleared first) — the
    /// event loop's allocation-free form of [`Network::route`].
    pub fn route_into(&self, packet: &Packet, hops: &mut Vec<Hop>) {
        hops.clear();
        let dst = packet.headers.ipv4.dst;
        let ports = self.cfg.switch.ports;
        match self.cfg.topology {
            Topology::Single => hops.push((0, self.hash_ip(dst, ports))),
            Topology::Linear(n) => {
                let port = self.hash_ip(dst, ports);
                hops.extend((0..n.max(1)).map(|i| (i, port)));
            }
            Topology::LeafSpine { leaves, spines } => {
                let src_leaf = self.hash_ip(packet.headers.ipv4.src, leaves);
                let dst_leaf = self.hash_ip(dst, leaves);
                // Host-facing ports sit above the spine-facing ports.
                let host_port = spines + self.hash_ip(dst, ports - spines);
                if src_leaf == dst_leaf {
                    hops.push((src_leaf, host_port));
                    return;
                }
                let spine = (hash_key(
                    self.cfg.routing_seed ^ 0xecae,
                    &packet.five_tuple().to_bits(),
                ) % spines as u64) as usize;
                hops.push((src_leaf, spine)); // leaf → spine
                hops.push((leaves + spine, dst_leaf % ports)); // spine → dst leaf
                hops.push((dst_leaf, host_port)); // leaf → host
            }
        }
    }

    /// Return every switch (queues, horizons, statistics) to its just-built
    /// state. [`Network::run`] calls this first, so each run — including
    /// reuse of one `Network` across several runs — starts from an idle
    /// network with zeroed drop counters.
    pub fn reset(&mut self) {
        for sw in &mut self.switches {
            sw.reset();
        }
    }

    /// Run a packet stream through the network, streaming every queue record
    /// to `sink`. Input must be sorted by arrival time (trace generators
    /// guarantee this).
    ///
    /// Each run starts from an idle network: queues, port horizons and
    /// per-queue statistics (including drop counters) are [`Network::reset`]
    /// first, so running the same packets through one `Network` twice
    /// produces identical records and identical [`Network::total_drops`].
    pub fn run(&mut self, packets: impl Iterator<Item = Packet>, mut sink: impl FnMut(QueueRecord)) {
        self.reset();
        // The heap holds only *internal* (next-hop) events; arrivals merge
        // in straight from the sorted input iterator, so a single-switch
        // topology never touches the heap at all. Its storage is pooled on
        // the Network (as is the route buffer), so steady-state replay
        // allocates nothing per packet.
        let mut heap: BinaryHeap<Reverse<Ev>> =
            BinaryHeap::from(std::mem::take(&mut self.heap_scratch));
        debug_assert!(heap.is_empty());
        let mut route = std::mem::take(&mut self.route_scratch);
        let mut seq = 0u64;
        let mut input = packets.peekable();

        loop {
            // Two-way merge, internal events first on time ties — identical
            // order to the old push-everything-through-the-heap loop, where
            // an arrival tied with an earlier-pushed (lower-seq) internal
            // event popped second.
            let take_input = match (input.peek(), heap.peek()) {
                (Some(p), Some(Reverse(e))) => p.arrival < e.time,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let ev = if take_input {
                let p = input.next().expect("peeked");
                seq += 1;
                Ev {
                    time: p.arrival,
                    seq,
                    hop: 0,
                    path: 0,
                    packet: p,
                }
            } else {
                let Some(Reverse(ev)) = heap.pop() else {
                    unreachable!("heap side chosen only when non-empty");
                };
                ev
            };
            self.route_into(&ev.packet, &mut route);
            let (sw_idx, port) = route[usize::from(ev.hop)];
            let sw = &mut self.switches[sw_idx];
            sw.release(ev.time, &mut sink);
            match sw.offer(ev.packet, port, ev.time, ev.path) {
                Forwarded::Dropped(record) => sink(record),
                Forwarded::Enqueued { tout, path } => {
                    if usize::from(ev.hop) + 1 < route.len() {
                        seq += 1;
                        heap.push(Reverse(Ev {
                            time: tout + self.cfg.link_latency,
                            seq,
                            hop: ev.hop + 1,
                            path,
                            packet: ev.packet,
                        }));
                    }
                }
            }
        }
        for sw in &mut self.switches {
            sw.flush(&mut sink);
        }
        self.heap_scratch = heap.into_vec();
        self.route_scratch = route;
    }

    /// Convenience: run and collect all records (small traces/tests).
    pub fn run_collect(&mut self, packets: impl Iterator<Item = Packet>) -> Vec<QueueRecord> {
        let mut out = Vec::new();
        self.run(packets, |r| out.push(r));
        out
    }

    /// Run a packet stream, delivering queue records to `sink` in batches of
    /// up to `batch_size` (the final batch may be shorter). Record order is
    /// identical to [`Network::run`]; batching only amortizes the consumer's
    /// per-record entry cost (see `Runtime::process_batch` in `perfq-core`).
    pub fn run_batched(
        &mut self,
        packets: impl Iterator<Item = Packet>,
        batch_size: usize,
        mut sink: impl FnMut(&[QueueRecord]),
    ) {
        assert!(batch_size > 0, "batch size must be positive");
        let mut buf = std::mem::take(&mut self.batch_scratch);
        buf.clear();
        buf.reserve(batch_size);
        self.run(packets, |r| {
            buf.push(r);
            if buf.len() == batch_size {
                sink(&buf);
                buf.clear();
            }
        });
        if !buf.is_empty() {
            sink(&buf);
        }
        buf.clear();
        self.batch_scratch = buf;
    }

    /// Run a packet stream, routing every queue record to one of `shards`
    /// consumers over fixed-capacity SPSC queues — the producer half of the
    /// sharded dataplane (`ShardedRuntime` in `perfq-core` owns the
    /// consumer half).
    ///
    /// `shard_of` maps a record to a shard index (a pure function of the
    /// record's group key, so one key never lands on two shards); records
    /// are staged in per-shard buffers of `batch` and pushed with one lock
    /// per batch. When a shard's queue is full the producer blocks
    /// (backpressure), mirroring a hardware collection path with bounded
    /// per-core rings. All senders are dropped on return, closing the
    /// streams.
    ///
    /// Returns the number of records routed to each shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard_of` returns an index out of range, or if a consumer
    /// disappears mid-run (dropped [`spsc::Receiver`]).
    pub fn run_sharded(
        &mut self,
        packets: impl Iterator<Item = Packet>,
        mut shard_of: impl FnMut(&QueueRecord) -> usize,
        senders: Vec<spsc::Sender<QueueRecord>>,
        batch: usize,
    ) -> Vec<u64> {
        assert!(batch > 0, "batch size must be positive");
        assert!(!senders.is_empty(), "need at least one shard");
        let shards = senders.len();
        let mut buffers: Vec<Vec<QueueRecord>> =
            (0..shards).map(|_| Vec::with_capacity(batch)).collect();
        let mut routed = vec![0u64; shards];
        self.run(packets, |r| {
            let s = shard_of(&r);
            assert!(s < shards, "shard_of returned {s} for {shards} shards");
            routed[s] += 1;
            buffers[s].push(r);
            if buffers[s].len() == batch {
                senders[s]
                    .send_all(&mut buffers[s])
                    .expect("shard worker disconnected");
            }
        });
        for (buf, tx) in buffers.iter_mut().zip(&senders) {
            if !buf.is_empty() {
                tx.send_all(buf).expect("shard worker disconnected");
            }
        }
        routed
    }

    /// Run a packet stream once, fanning every queue record out to several
    /// sharded consumers — the producer half of the **multi-query** sharded
    /// dataplane, where K installed programs each own N worker shards but
    /// the network event loop runs a single time.
    ///
    /// `shard_of(k, record)` maps a record to consumer `k`'s shard (each
    /// program routes by its own group key); `senders[k]` holds consumer
    /// `k`'s per-shard queues. Staging and backpressure behave exactly as
    /// in [`Network::run_sharded`], per consumer. All senders are dropped
    /// on return, closing every stream.
    ///
    /// Returns per-consumer, per-shard routed counts.
    ///
    /// # Panics
    ///
    /// Panics if `shard_of` returns an index out of range, or a consumer
    /// disappears mid-run.
    pub fn run_multi_sharded(
        &mut self,
        packets: impl Iterator<Item = Packet>,
        mut shard_of: impl FnMut(usize, &QueueRecord) -> usize,
        senders: Vec<Vec<spsc::Sender<QueueRecord>>>,
        batch: usize,
    ) -> Vec<Vec<u64>> {
        assert!(batch > 0, "batch size must be positive");
        assert!(
            senders.iter().all(|s| !s.is_empty()) && !senders.is_empty(),
            "every consumer needs at least one shard"
        );
        let mut buffers: Vec<Vec<Vec<QueueRecord>>> = senders
            .iter()
            .map(|s| (0..s.len()).map(|_| Vec::with_capacity(batch)).collect())
            .collect();
        let mut routed: Vec<Vec<u64>> = senders.iter().map(|s| vec![0u64; s.len()]).collect();
        let last = senders.len() - 1;
        self.run(packets, |r| {
            // The final consumer takes the record by move — K consumers
            // cost K-1 clones per record, and the common K=1 case none.
            for (k, txs) in senders[..last].iter().enumerate() {
                let s = shard_of(k, &r);
                assert!(
                    s < txs.len(),
                    "shard_of returned {s} for consumer {k} with {} shards",
                    txs.len()
                );
                routed[k][s] += 1;
                buffers[k][s].push(r.clone());
                if buffers[k][s].len() == batch {
                    txs[s]
                        .send_all(&mut buffers[k][s])
                        .expect("shard worker disconnected");
                }
            }
            let s = shard_of(last, &r);
            assert!(
                s < senders[last].len(),
                "shard_of returned {s} for consumer {last} with {} shards",
                senders[last].len()
            );
            routed[last][s] += 1;
            buffers[last][s].push(r);
            if buffers[last][s].len() == batch {
                senders[last][s]
                    .send_all(&mut buffers[last][s])
                    .expect("shard worker disconnected");
            }
        });
        for (bufs, txs) in buffers.iter_mut().zip(&senders) {
            for (buf, tx) in bufs.iter_mut().zip(txs) {
                if !buf.is_empty() {
                    tx.send_all(buf).expect("shard worker disconnected");
                }
            }
        }
        routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfq_packet::PacketBuilder;
    use std::collections::HashMap;

    fn pkt(uniq: u64, src: Ipv4Addr, dst: Ipv4Addr, at: Nanos) -> Packet {
        PacketBuilder::tcp()
            .src(src, 1000)
            .dst(dst, 80)
            .payload_len(946)
            .uniq(uniq)
            .arrival(at)
            .build()
    }

    #[test]
    fn single_switch_every_packet_observed_once() {
        let mut net = Network::new(NetworkConfig::default());
        let packets: Vec<Packet> = (0..100)
            .map(|i| {
                pkt(
                    i,
                    Ipv4Addr::new(10, 0, 0, (i % 20) as u8),
                    Ipv4Addr::new(172, 16, 0, (i % 5) as u8),
                    Nanos(i * 1000),
                )
            })
            .collect();
        let records = net.run_collect(packets.into_iter());
        assert_eq!(records.len(), 100);
        let mut uniqs: Vec<u64> = records.iter().map(|r| r.packet.uniq).collect();
        uniqs.sort_unstable();
        assert_eq!(uniqs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn linear_chain_observes_each_packet_per_hop() {
        let mut net = Network::new(NetworkConfig {
            topology: Topology::Linear(3),
            ..Default::default()
        });
        let packets: Vec<Packet> = (0..50)
            .map(|i| {
                pkt(
                    i,
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(172, 16, 0, (i % 7) as u8),
                    Nanos(i * 2000),
                )
            })
            .collect();
        let records = net.run_collect(packets.into_iter());
        assert_eq!(records.len(), 150);
        let mut per_pkt: HashMap<u64, Vec<&QueueRecord>> = HashMap::new();
        for r in &records {
            per_pkt.entry(r.packet.uniq).or_default().push(r);
        }
        for (uniq, recs) in per_pkt {
            assert_eq!(recs.len(), 3, "packet {uniq}");
            // Hops happen at increasing times with link latency in between.
            let mut sorted = recs.clone();
            sorted.sort_by_key(|r| r.tin);
            for w in sorted.windows(2) {
                assert!(w[1].tin >= w[0].tout + Nanos::from_micros(1));
            }
            // Path accumulates three queues.
            let deepest = sorted.last().expect("nonempty");
            assert!(deepest.path > 0x100);
        }
    }

    #[test]
    fn end_to_end_latency_sums_per_queue_delays() {
        let mut net = Network::new(NetworkConfig {
            topology: Topology::Linear(2),
            ..Default::default()
        });
        let records =
            net.run_collect(std::iter::once(pkt(1, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(172, 16, 0, 1), Nanos(0))));
        let total: u64 = records.iter().map(|r| r.delay().as_nanos()).sum();
        // Two store-and-forward hops of a 1000 B packet at 10 Gbit/s: 800 ns each.
        assert_eq!(total, 1600);
    }

    #[test]
    fn leaf_spine_cross_leaf_takes_three_hops() {
        let cfg = NetworkConfig {
            topology: Topology::LeafSpine {
                leaves: 4,
                spines: 2,
            },
            ..Default::default()
        };
        let mut net = Network::new(cfg);
        // Find a src/dst pair on different leaves.
        let mut found = None;
        'outer: for a in 1..50u8 {
            for b in 1..50u8 {
                let p = pkt(
                    1,
                    Ipv4Addr::new(10, 0, 0, a),
                    Ipv4Addr::new(172, 16, 0, b),
                    Nanos(0),
                );
                let route = net.route(&p);
                if route.len() == 3 {
                    found = Some(p);
                    break 'outer;
                }
            }
        }
        let p = found.expect("some pair crosses leaves");
        let records = net.run_collect(std::iter::once(p));
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn leaf_spine_same_leaf_is_one_hop() {
        let cfg = NetworkConfig {
            topology: Topology::LeafSpine {
                leaves: 2,
                spines: 2,
            },
            ..Default::default()
        };
        let net = Network::new(cfg);
        let mut one_hop = 0;
        let mut three_hop = 0;
        for a in 1..40u8 {
            let p = pkt(
                1,
                Ipv4Addr::new(10, 0, 0, a),
                Ipv4Addr::new(172, 16, 0, a.wrapping_mul(7)),
                Nanos(0),
            );
            match net.route(&p).len() {
                1 => one_hop += 1,
                3 => three_hop += 1,
                other => panic!("unexpected route length {other}"),
            }
        }
        assert!(one_hop > 0, "some pairs share a leaf");
        assert!(three_hop > 0, "some pairs cross the spine");
    }

    #[test]
    fn ecmp_spreads_flows_across_spines() {
        let cfg = NetworkConfig {
            topology: Topology::LeafSpine {
                leaves: 2,
                spines: 4,
            },
            switch: SwitchConfig {
                ports: 16,
                ..Default::default()
            },
            ..Default::default()
        };
        let net = Network::new(cfg);
        let mut spine_used = std::collections::HashSet::new();
        for sp in 1..100u16 {
            let p = PacketBuilder::tcp()
                .src(Ipv4Addr::new(10, 0, 0, 1), 1000 + sp)
                .dst(Ipv4Addr::new(172, 16, 0, 200), 80)
                .uniq(u64::from(sp))
                .build();
            let route = net.route(&p);
            if route.len() == 3 {
                spine_used.insert(route[1].0);
            }
        }
        assert!(spine_used.len() >= 3, "flows hash across spines");
    }

    #[test]
    fn congestion_produces_drops_with_infinite_tout() {
        let mut net = Network::new(NetworkConfig {
            switch: SwitchConfig {
                ports: 1,
                port_rate_bps: 1e9, // slow port: 8 µs per 1000 B packet
                queue_capacity: 4,
            },
            ..Default::default()
        });
        // 100 packets arriving every 100 ns overwhelm the port.
        let packets: Vec<Packet> = (0..100)
            .map(|i| {
                pkt(
                    i,
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(172, 16, 0, 1),
                    Nanos(i * 100),
                )
            })
            .collect();
        let records = net.run_collect(packets.into_iter());
        let drops = records.iter().filter(|r| r.is_drop()).count();
        assert!(drops > 50, "only {drops} drops");
        assert_eq!(net.total_drops() as usize, drops);
        assert_eq!(records.len(), 100);
    }

    #[test]
    fn network_reuse_across_runs_is_well_defined() {
        // Reusing one Network must behave exactly like a fresh one: queue
        // horizons, inflight state and drop counters all reset per run.
        let mut net = Network::new(NetworkConfig {
            switch: SwitchConfig {
                ports: 1,
                port_rate_bps: 1e9,
                queue_capacity: 4,
            },
            ..Default::default()
        });
        let packets: Vec<Packet> = (0..60)
            .map(|i| {
                pkt(
                    i,
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(172, 16, 0, 1),
                    Nanos(i * 100),
                )
            })
            .collect();
        let first = net.run_collect(packets.clone().into_iter());
        let drops_first = net.total_drops();
        assert!(drops_first > 0, "workload must overload the port");
        // Second run through the SAME network: identical records, and the
        // drop counter reflects this run alone (not an accumulation).
        let second = net.run_collect(packets.clone().into_iter());
        assert_eq!(first, second, "reused network must replay identically");
        assert_eq!(net.total_drops(), drops_first);
        // And a batched run over the same network agrees too.
        let mut third = Vec::new();
        net.run_batched(packets.into_iter(), 7, |part| third.extend_from_slice(part));
        assert_eq!(first, third);
        assert_eq!(net.total_drops(), drops_first);
    }

    #[test]
    fn run_sharded_routes_every_record_once() {
        let packets: Vec<Packet> = (0..300)
            .map(|i| {
                pkt(
                    i,
                    Ipv4Addr::new(10, 0, 0, (i % 13) as u8),
                    Ipv4Addr::new(172, 16, 0, (i % 11) as u8),
                    Nanos(i * 500),
                )
            })
            .collect();
        let mut net = Network::new(NetworkConfig::default());
        let want = net.run_collect(packets.clone().into_iter());

        let shards = 3usize;
        let (txs, rxs): (Vec<_>, Vec<_>) =
            (0..shards).map(|_| crate::spsc::channel(64)).unzip();
        let consumers: Vec<_> = rxs
            .into_iter()
            .map(|rx| {
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while rx.recv_many(&mut got, 32) > 0 {}
                    got
                })
            })
            .collect();
        let routed = net.run_sharded(
            packets.into_iter(),
            |r| (r.packet.uniq % shards as u64) as usize,
            txs,
            16,
        );
        let per_shard: Vec<Vec<QueueRecord>> =
            consumers.into_iter().map(|c| c.join().unwrap()).collect();
        for (i, (n, recs)) in routed.iter().zip(&per_shard).enumerate() {
            assert_eq!(*n as usize, recs.len(), "shard {i} count");
            assert!(
                recs.iter().all(|r| r.packet.uniq % shards as u64 == i as u64),
                "shard {i} got foreign records"
            );
        }
        // Same multiset of records as the unsharded run (order differs
        // across shards; within a shard it is a subsequence of the stream).
        let mut flat: Vec<QueueRecord> = per_shard.into_iter().flatten().collect();
        let mut expect = want;
        let key = |r: &QueueRecord| (r.packet.uniq, r.qid, r.tin);
        flat.sort_by_key(key);
        expect.sort_by_key(key);
        assert_eq!(flat, expect);
    }

    #[test]
    fn run_is_deterministic() {
        let packets: Vec<Packet> = (0..200)
            .map(|i| {
                pkt(
                    i,
                    Ipv4Addr::new(10, 0, 0, (i % 13) as u8),
                    Ipv4Addr::new(172, 16, 0, (i % 11) as u8),
                    Nanos(i * 500),
                )
            })
            .collect();
        let cfg = NetworkConfig {
            topology: Topology::LeafSpine {
                leaves: 2,
                spines: 2,
            },
            ..Default::default()
        };
        let a = Network::new(cfg).run_collect(packets.clone().into_iter());
        let b = Network::new(cfg).run_collect(packets.into_iter());
        assert_eq!(a, b);
    }
}
