//! # perfq-switch
//!
//! The switch and network substrate: the machine the paper's queries compile
//! onto.
//!
//! * [`record`] — rows of the paper's base table
//!   `(pkt_hdr, qid, tin, tout, qsize, pkt_path)`;
//! * [`queue`] — exact-FIFO output queues producing the performance
//!   metadata (enqueue/dequeue timestamps, occupancy, drops with
//!   `tout = ∞`);
//! * [`switch`] — per-port queues behind a forwarding decision;
//! * [`network`] — single-switch, linear-chain and leaf–spine topologies
//!   with event-driven, analytically-exact timing;
//! * [`spsc`] — fixed-capacity single-producer/single-consumer record
//!   queues, the transport between the network event loop and the sharded
//!   multi-core dataplane (`Network::run_sharded` is the producer half);
//! * [`alu`] — the stateful-ALU feasibility model (§3.3): audits compiled
//!   folds against a Banzai-like per-cycle resource budget.
//!
//! # Example
//!
//! ```
//! use perfq_switch::{Network, NetworkConfig};
//! use perfq_trace::{SyntheticTrace, TraceConfig};
//!
//! let mut net = Network::new(NetworkConfig::default());
//! let trace = SyntheticTrace::new(TraceConfig::test_small(1)).take(1_000);
//! let records = net.run_collect(trace);
//! assert_eq!(records.len(), 1_000);
//! // Records carry the paper's schema fields:
//! assert!(records.iter().all(|r| r.tout > r.tin || r.is_drop()));
//! ```

//!
//! For the paper-section → crate/file map of the whole workspace, see
//! `ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
pub mod network;
pub mod queue;
pub mod record;
pub mod spsc;
pub mod switch;

pub use alu::{AluReport, AluSpec, AluViolation};
pub use network::{Network, NetworkConfig, Topology};
pub use queue::{OutputQueue, QueueStats};
pub use record::QueueRecord;
pub use switch::{Forwarded, Switch, SwitchConfig};
