//! Stateful-ALU feasibility model.
//!
//! §3.3 argues each value update fits in one clock cycle: linear-in-state
//! updates map to a fused multiply-add, others to the small combinational
//! circuits of Domino/Banzai ("Packet Transactions", SIGCOMM 2016). Real
//! stateful ALUs are tiny — a handful of adders, one multiplier, a mux tree
//! of limited depth — so not every fold the *language* accepts is realizable
//! at line rate.
//!
//! [`AluSpec::check`] audits a compiled fold against such a budget and
//! reports the resources it needs, letting the compiler reject (or warn
//! about) folds that would not close timing at 1 GHz.

use perfq_lang::ir::{FoldIr, RExpr, RStmt};
use perfq_lang::FoldClass;
use std::fmt;

/// Resource budget of one stateful ALU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AluSpec {
    /// Maximum state variables (hardware registers) per key.
    pub max_state_vars: usize,
    /// Maximum arithmetic/compare operations in one update.
    pub max_ops: usize,
    /// Maximum depth of nested conditionals (predication mux depth).
    pub max_branch_depth: usize,
    /// Whether a multiplier is available (needed by EWMA-style folds; plain
    /// counters only need adders).
    pub has_multiplier: bool,
    /// Maximum packet-history window supported (registers latching recent
    /// packet fields).
    pub max_window: u32,
}

impl AluSpec {
    /// A Banzai-like stateful atom: pairs of state registers, a small op
    /// budget, one multiplier, depth-2 predication.
    #[must_use]
    pub fn banzai() -> Self {
        AluSpec {
            max_state_vars: 4,
            max_ops: 16,
            max_branch_depth: 2,
            has_multiplier: true,
            max_window: 2,
        }
    }

    /// A generous research configuration (what a next-generation chip might
    /// provision) — used by tests and the ablation bench.
    #[must_use]
    pub fn large() -> Self {
        AluSpec {
            max_state_vars: 16,
            max_ops: 64,
            max_branch_depth: 4,
            has_multiplier: true,
            max_window: 4,
        }
    }

    /// Audit a fold against this budget.
    pub fn check(&self, fold: &FoldIr) -> Result<AluReport, AluViolation> {
        let usage = measure(fold);
        if usage.state_vars > self.max_state_vars {
            return Err(AluViolation::TooManyStateVars {
                needed: usage.state_vars,
                available: self.max_state_vars,
            });
        }
        if usage.ops > self.max_ops {
            return Err(AluViolation::TooManyOps {
                needed: usage.ops,
                available: self.max_ops,
            });
        }
        if usage.branch_depth > self.max_branch_depth {
            return Err(AluViolation::BranchTooDeep {
                needed: usage.branch_depth,
                available: self.max_branch_depth,
            });
        }
        if usage.uses_multiplier && !self.has_multiplier {
            return Err(AluViolation::NeedsMultiplier);
        }
        if usage.window > self.max_window {
            return Err(AluViolation::WindowTooDeep {
                needed: usage.window,
                available: self.max_window,
            });
        }
        Ok(usage)
    }
}

/// Measured resource usage of a fold (also the success report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluReport {
    /// State registers required.
    pub state_vars: usize,
    /// Arithmetic/compare/mux operations per update.
    pub ops: usize,
    /// Deepest conditional nesting.
    pub branch_depth: usize,
    /// Whether any multiply/divide appears.
    pub uses_multiplier: bool,
    /// Packet-history window required.
    pub window: u32,
}

/// A budget violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluViolation {
    /// More state registers than the ALU provides.
    TooManyStateVars {
        /// Registers the fold needs.
        needed: usize,
        /// Registers available.
        available: usize,
    },
    /// More operations than fit in a cycle.
    TooManyOps {
        /// Ops the fold needs.
        needed: usize,
        /// Ops available.
        available: usize,
    },
    /// Conditional nesting exceeds the mux tree.
    BranchTooDeep {
        /// Depth needed.
        needed: usize,
        /// Depth available.
        available: usize,
    },
    /// The fold multiplies but the ALU has no multiplier.
    NeedsMultiplier,
    /// Packet-history window exceeds the latch registers.
    WindowTooDeep {
        /// Window needed.
        needed: u32,
        /// Window available.
        available: u32,
    },
}

impl fmt::Display for AluViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AluViolation::TooManyStateVars { needed, available } => write!(
                f,
                "fold needs {needed} state registers, ALU provides {available}"
            ),
            AluViolation::TooManyOps { needed, available } => {
                write!(f, "fold needs {needed} ops/cycle, ALU provides {available}")
            }
            AluViolation::BranchTooDeep { needed, available } => write!(
                f,
                "fold nests conditionals {needed} deep, ALU muxes support {available}"
            ),
            AluViolation::NeedsMultiplier => {
                write!(f, "fold multiplies, but the ALU has no multiplier")
            }
            AluViolation::WindowTooDeep { needed, available } => write!(
                f,
                "fold needs a {needed}-packet history window, ALU latches {available}"
            ),
        }
    }
}

impl std::error::Error for AluViolation {}

/// Measure a fold's resource usage.
#[must_use]
pub fn measure(fold: &FoldIr) -> AluReport {
    let mut ops = 0usize;
    let mut uses_mul = false;
    fn expr_ops(e: &RExpr, ops: &mut usize, mul: &mut bool) {
        match e {
            RExpr::Const(_) | RExpr::Input(_) | RExpr::State(_) | RExpr::Param(_) => {}
            RExpr::Unary(_, x) => {
                *ops += 1;
                expr_ops(x, ops, mul);
            }
            RExpr::Binary(op, l, r) => {
                *ops += 1;
                if matches!(
                    op,
                    perfq_lang::ast::BinOp::Mul | perfq_lang::ast::BinOp::Div | perfq_lang::ast::BinOp::Mod
                ) {
                    *mul = true;
                }
                expr_ops(l, ops, mul);
                expr_ops(r, ops, mul);
            }
            RExpr::Call(_, args) => {
                *ops += 1;
                for a in args {
                    expr_ops(a, ops, mul);
                }
            }
        }
    }
    fn stmt_ops(stmts: &[RStmt], ops: &mut usize, mul: &mut bool, depth: usize, max_depth: &mut usize) {
        for s in stmts {
            match s {
                RStmt::Assign(_, e) => expr_ops(e, ops, mul),
                RStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    *ops += 1; // the select mux
                    expr_ops(cond, ops, mul);
                    *max_depth = (*max_depth).max(depth + 1);
                    stmt_ops(then_body, ops, mul, depth + 1, max_depth);
                    stmt_ops(else_body, ops, mul, depth + 1, max_depth);
                }
            }
        }
    }
    let mut branch_depth = 0usize;
    stmt_ops(&fold.body, &mut ops, &mut uses_mul, 0, &mut branch_depth);
    let window = match fold.class {
        FoldClass::Linear { window } | FoldClass::PureWindow { window } => window,
        FoldClass::NonLinear => 0,
    };
    AluReport {
        state_vars: fold.state.len(),
        ops,
        branch_depth,
        uses_multiplier: uses_mul,
        window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfq_lang::fig2;

    fn fold_of(q: &fig2::Fig2Query) -> FoldIr {
        let prog = fig2::compile(q).unwrap();
        prog.query(q.verdict_query)
            .unwrap()
            .fold()
            .expect("verdict query aggregates")
            .clone()
    }

    #[test]
    fn all_fig2_folds_fit_a_banzai_alu() {
        let spec = AluSpec::banzai();
        for q in fig2::ALL {
            let fold = fold_of(q);
            let report = spec.check(&fold);
            assert!(
                report.is_ok(),
                "{}: {:?}",
                q.name,
                report.expect_err("checked is_ok above")
            );
        }
    }

    #[test]
    fn ewma_needs_the_multiplier() {
        let fold = fold_of(&fig2::LATENCY_EWMA);
        let report = measure(&fold);
        assert!(report.uses_multiplier);
        let no_mul = AluSpec {
            has_multiplier: false,
            ..AluSpec::banzai()
        };
        assert_eq!(no_mul.check(&fold), Err(AluViolation::NeedsMultiplier));
    }

    #[test]
    fn counter_does_not_need_multiplier() {
        let fold = fold_of(&fig2::PER_FLOW_COUNTERS);
        assert!(!measure(&fold).uses_multiplier);
    }

    #[test]
    fn out_of_seq_needs_one_packet_window() {
        let fold = fold_of(&fig2::TCP_OUT_OF_SEQUENCE);
        assert_eq!(measure(&fold).window, 1);
        let no_window = AluSpec {
            max_window: 0,
            ..AluSpec::banzai()
        };
        assert!(matches!(
            no_window.check(&fold),
            Err(AluViolation::WindowTooDeep { needed: 1, .. })
        ));
    }

    #[test]
    fn tight_op_budget_rejects() {
        let fold = fold_of(&fig2::LATENCY_EWMA);
        let tiny = AluSpec {
            max_ops: 1,
            ..AluSpec::banzai()
        };
        assert!(matches!(
            tiny.check(&fold),
            Err(AluViolation::TooManyOps { .. })
        ));
    }

    #[test]
    fn state_budget_rejects() {
        let fold = fold_of(&fig2::TCP_OUT_OF_SEQUENCE);
        let tiny = AluSpec {
            max_state_vars: 1,
            ..AluSpec::banzai()
        };
        assert!(matches!(
            tiny.check(&fold),
            Err(AluViolation::TooManyStateVars { needed: 2, available: 1 })
        ));
    }

    #[test]
    fn violations_display() {
        let v = AluViolation::TooManyOps {
            needed: 20,
            available: 16,
        };
        assert!(v.to_string().contains("20"));
    }
}
