//! Nanosecond timestamps.
//!
//! The paper's schema timestamps every packet's arrival (`tin`) and departure
//! (`tout`) at each queue with the switch clock (1 GHz ⇒ 1 ns resolution), and
//! represents a drop as `tout = ∞`. [`Nanos`] encodes both: a `u64` nanosecond
//! count with `u64::MAX` reserved as the infinity sentinel.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (simulated) time, in nanoseconds since the start of the run.
///
/// `Nanos::INFINITY` marks "never happened" — the paper assigns it to `tout`
/// of dropped packets so that `WHERE tout == infinity` selects drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero.
    pub const ZERO: Nanos = Nanos(0);
    /// The infinity sentinel (dropped packets' departure time).
    pub const INFINITY: Nanos = Nanos(u64::MAX);

    /// Construct from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// True iff this is the infinity sentinel.
    #[must_use]
    pub const fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }

    /// The raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (infinity maps to `f64::INFINITY`).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        if self.is_infinite() {
            f64::INFINITY
        } else {
            self.0 as f64 / 1e9
        }
    }

    /// Saturating difference `self - earlier`, propagating infinity.
    ///
    /// This is the queueing-delay primitive: `tout.delta(tin)`. A dropped
    /// packet (infinite `tout`) yields an infinite delay.
    #[must_use]
    pub fn delta(self, earlier: Nanos) -> Nanos {
        if self.is_infinite() {
            Nanos::INFINITY
        } else {
            Nanos(self.0.saturating_sub(earlier.0))
        }
    }

    /// Checked addition that keeps infinity absorbing.
    #[must_use]
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        if self.is_infinite() || rhs.is_infinite() {
            Nanos::INFINITY
        } else {
            Nanos(self.0.saturating_add(rhs.0))
        }
    }

    /// The later of two timestamps.
    #[must_use]
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two timestamps.
    #[must_use]
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        self.delta(rhs)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
        assert_eq!(Nanos::from_millis(1), Nanos(1_000_000));
        assert_eq!(Nanos::from_micros(1), Nanos(1_000));
        assert_eq!(Nanos::from_secs(2), Nanos::from_millis(2000));
    }

    #[test]
    fn infinity_is_absorbing() {
        let inf = Nanos::INFINITY;
        assert!(inf.is_infinite());
        assert!((inf + Nanos(5)).is_infinite());
        assert!((Nanos(5) + inf).is_infinite());
        assert!(inf.delta(Nanos(100)).is_infinite());
        assert_eq!(inf.as_secs_f64(), f64::INFINITY);
    }

    #[test]
    fn delta_saturates_at_zero() {
        assert_eq!(Nanos(100).delta(Nanos(40)), Nanos(60));
        assert_eq!(Nanos(40).delta(Nanos(100)), Nanos(0));
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Nanos(1) < Nanos(2));
        assert!(Nanos(2) < Nanos::INFINITY);
        assert_eq!(Nanos(7).max(Nanos(3)), Nanos(7));
        assert_eq!(Nanos(7).min(Nanos(3)), Nanos(3));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Nanos(12).to_string(), "12ns");
        assert_eq!(Nanos(1_500).to_string(), "1.500us");
        assert_eq!(Nanos(2_500_000).to_string(), "2.500ms");
        assert_eq!(Nanos::from_secs(3).to_string(), "3.000s");
        assert_eq!(Nanos::INFINITY.to_string(), "inf");
    }

    #[test]
    fn sub_operator_is_delta() {
        assert_eq!(Nanos(10) - Nanos(4), Nanos(6));
        assert!((Nanos::INFINITY - Nanos(4)).is_infinite());
    }
}
