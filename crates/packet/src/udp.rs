//! UDP header parsing and serialization.

use crate::ParseError;

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of UDP header plus payload, in bytes.
    pub length: u16,
}

impl UdpHeader {
    /// Parse the header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(ParseError::Truncated {
                header: "udp",
                needed: UDP_HEADER_LEN,
                available: buf.len(),
            });
        }
        let length = u16::from_be_bytes([buf[4], buf[5]]);
        if (length as usize) < UDP_HEADER_LEN {
            return Err(ParseError::Malformed {
                header: "udp",
                reason: "length smaller than header",
            });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                length,
            },
            UDP_HEADER_LEN,
        ))
    }

    /// Append the wire representation to `out` (checksum zero = disabled).
    pub fn serialize(&self, out: &mut Vec<u8>) -> usize {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        UDP_HEADER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let hdr = UdpHeader {
            src_port: 53,
            dst_port: 40000,
            length: 512,
        };
        let mut buf = Vec::new();
        hdr.serialize(&mut buf);
        let (parsed, n) = UdpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(n, UDP_HEADER_LEN);
    }

    #[test]
    fn rejects_bad_length_field() {
        let hdr = UdpHeader {
            src_port: 1,
            dst_port: 2,
            length: 4,
        };
        let mut buf = Vec::new();
        hdr.serialize(&mut buf);
        assert!(UdpHeader::parse(&buf).is_err());
    }

    #[test]
    fn rejects_truncation() {
        assert!(UdpHeader::parse(&[0u8; 7]).is_err());
    }
}
