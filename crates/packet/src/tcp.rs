//! TCP header parsing and serialization.

use crate::ParseError;
use std::fmt;

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits (the low 6 of the flags byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG flag.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Union of two flag sets.
    #[must_use]
    pub const fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// True iff every bit of `other` is set in `self`.
    #[must_use]
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True iff the SYN bit is set.
    #[must_use]
    pub const fn is_syn(self) -> bool {
        self.contains(Self::SYN)
    }

    /// True iff the FIN bit is set.
    #[must_use]
    pub const fn is_fin(self) -> bool {
        self.contains(Self::FIN)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Self::SYN, 'S'),
            (Self::ACK, 'A'),
            (Self::FIN, 'F'),
            (Self::RST, 'R'),
            (Self::PSH, 'P'),
            (Self::URG, 'U'),
        ];
        let mut any = false;
        for (flag, ch) in names {
            if self.contains(flag) {
                write!(f, "{ch}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A TCP header (options unsupported: data offset must be 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Parse the header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(ParseError::Truncated {
                header: "tcp",
                needed: TCP_HEADER_LEN,
                available: buf.len(),
            });
        }
        let data_offset = buf[12] >> 4;
        if data_offset != 5 {
            return Err(ParseError::Malformed {
                header: "tcp",
                reason: "options (data offset != 5) are not supported",
            });
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                flags: TcpFlags(buf[13] & 0x3f),
                window: u16::from_be_bytes([buf[14], buf[15]]),
            },
            TCP_HEADER_LEN,
        ))
    }

    /// Append the wire representation to `out` (checksum left zero — the
    /// simulator never routes through devices that validate L4 checksums).
    pub fn serialize(&self, out: &mut Vec<u8>) -> usize {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4);
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum (unused)
        out.extend_from_slice(&[0, 0]); // urgent pointer (unused)
        TCP_HEADER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TcpHeader {
        TcpHeader {
            src_port: 443,
            dst_port: 51514,
            seq: 0xdead_beef,
            ack: 0x0102_0304,
            flags: TcpFlags::ACK.union(TcpFlags::PSH),
            window: 65535,
        }
    }

    #[test]
    fn round_trip() {
        let hdr = sample();
        let mut buf = Vec::new();
        let n = hdr.serialize(&mut buf);
        assert_eq!(n, TCP_HEADER_LEN);
        let (parsed, consumed) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(consumed, TCP_HEADER_LEN);
    }

    #[test]
    fn rejects_options() {
        let mut buf = Vec::new();
        sample().serialize(&mut buf);
        buf[12] = 8 << 4;
        assert!(TcpHeader::parse(&buf).is_err());
    }

    #[test]
    fn rejects_truncation() {
        assert!(matches!(
            TcpHeader::parse(&[0u8; 19]).unwrap_err(),
            ParseError::Truncated { header: "tcp", .. }
        ));
    }

    #[test]
    fn flag_algebra() {
        let f = TcpFlags::SYN.union(TcpFlags::ACK);
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(f.is_syn());
        assert!(!f.is_fin());
    }

    #[test]
    fn flag_display() {
        assert_eq!(TcpFlags::SYN.union(TcpFlags::ACK).to_string(), "SA");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }
}
