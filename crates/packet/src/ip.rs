//! IPv4 header parsing and serialization, including the header checksum.

use crate::ParseError;
use std::net::Ipv4Addr;

/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers the simulator's parse graph recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMP (1) — parsed as opaque payload.
    Icmp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProto {
    /// Numeric wire value.
    #[must_use]
    pub fn to_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }

    /// Decode from the wire value.
    #[must_use]
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// An IPv4 header (options unsupported: IHL must be 5, mirroring the paper's
/// line-rate parser assumption of fixed-format headers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services code point + ECN byte.
    pub dscp_ecn: u8,
    /// Total length of the IP datagram (header + payload) in bytes.
    pub total_len: u16,
    /// Identification field (used by some generators as a flow-local counter).
    pub ident: u16,
    /// Flags (3 bits) and fragment offset (13 bits), packed as on the wire.
    pub flags_frag: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Parse the header from the front of `buf`, verifying version and IHL.
    pub fn parse(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated {
                header: "ipv4",
                needed: IPV4_HEADER_LEN,
                available: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(ParseError::Malformed {
                header: "ipv4",
                reason: "version field is not 4",
            });
        }
        let ihl = buf[0] & 0x0f;
        if ihl != 5 {
            return Err(ParseError::Malformed {
                header: "ipv4",
                reason: "options (IHL != 5) are not supported",
            });
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if (total_len as usize) < IPV4_HEADER_LEN {
            return Err(ParseError::Malformed {
                header: "ipv4",
                reason: "total length smaller than header",
            });
        }
        Ok((
            Ipv4Header {
                dscp_ecn: buf[1],
                total_len,
                ident: u16::from_be_bytes([buf[4], buf[5]]),
                flags_frag: u16::from_be_bytes([buf[6], buf[7]]),
                ttl: buf[8],
                proto: IpProto::from_u8(buf[9]),
                src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
                dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            },
            IPV4_HEADER_LEN,
        ))
    }

    /// Append the wire representation (with a correct checksum) to `out`.
    pub fn serialize(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        out.push(0x45); // version 4, IHL 5
        out.push(self.dscp_ecn);
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&self.flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.proto.to_u8());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let csum = checksum(&out[start..start + IPV4_HEADER_LEN]);
        out[start + 10] = (csum >> 8) as u8;
        out[start + 11] = (csum & 0xff) as u8;
        IPV4_HEADER_LEN
    }

    /// Validate the header checksum over raw bytes (must cover exactly the
    /// 20-byte header). Returns true when the stored checksum is consistent.
    #[must_use]
    pub fn verify_checksum(raw: &[u8]) -> bool {
        raw.len() >= IPV4_HEADER_LEN && checksum(&raw[..IPV4_HEADER_LEN]) == 0
    }
}

/// The RFC 1071 Internet checksum: one's-complement sum of 16-bit words.
///
/// Computing it over a header whose checksum field is zero yields the value to
/// store; computing it over a header with a correct stored checksum yields 0.
#[must_use]
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: 60,
            ident: 0x1234,
            flags_frag: 0x4000, // DF
            ttl: 64,
            proto: IpProto::Tcp,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
        }
    }

    #[test]
    fn round_trip_and_checksum() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.serialize(&mut buf);
        assert!(Ipv4Header::verify_checksum(&buf));
        let (parsed, n) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(n, IPV4_HEADER_LEN);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut buf = Vec::new();
        sample().serialize(&mut buf);
        buf[8] ^= 0xff; // flip TTL
        assert!(!Ipv4Header::verify_checksum(&buf));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        sample().serialize(&mut buf);
        buf[0] = 0x65; // version 6
        let err = Ipv4Header::parse(&buf).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { header: "ipv4", .. }));
    }

    #[test]
    fn rejects_options() {
        let mut buf = Vec::new();
        sample().serialize(&mut buf);
        buf[0] = 0x46; // IHL 6
        assert!(Ipv4Header::parse(&buf).is_err());
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(matches!(
            Ipv4Header::parse(&[0u8; 10]).unwrap_err(),
            ParseError::Truncated { header: "ipv4", .. }
        ));
    }

    #[test]
    fn rejects_total_len_below_header() {
        let mut buf = Vec::new();
        sample().serialize(&mut buf);
        buf[2] = 0;
        buf[3] = 10; // total_len = 10 < 20
        assert!(Ipv4Header::parse(&buf).is_err());
    }

    #[test]
    fn checksum_odd_length_input() {
        // Odd-length data pads with a zero byte; just ensure it is stable.
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn proto_codec_round_trips() {
        for v in 0u8..=255 {
            assert_eq!(IpProto::from_u8(v).to_u8(), v);
        }
    }
}
