//! Ethernet II framing.

use crate::ParseError;
use std::fmt;

/// Length of an Ethernet II header (no 802.1Q tag) in bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Build a locally-administered unicast MAC from a 32-bit host id, handy
    /// for synthetic traces (`02:00:xx:xx:xx:xx`).
    #[must_use]
    pub fn from_host_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True for the broadcast address.
    #[must_use]
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// The EtherType values the simulator's parse graph handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`) — parsed but not interpreted further.
    Arp,
    /// Any other value, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Numeric wire value.
    #[must_use]
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Decode from the wire value.
    #[must_use]
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Parse the header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(ParseError::Truncated {
                header: "ethernet",
                needed: ETHERNET_HEADER_LEN,
                available: buf.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]]));
        Ok((
            EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            ETHERNET_HEADER_LEN,
        ))
    }

    /// Append the wire representation to `out`; returns bytes written.
    pub fn serialize(&self, out: &mut Vec<u8>) -> usize {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
        ETHERNET_HEADER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetHeader {
        EthernetHeader {
            dst: MacAddr::from_host_id(1),
            src: MacAddr::from_host_id(2),
            ethertype: EtherType::Ipv4,
        }
    }

    #[test]
    fn round_trip() {
        let hdr = sample();
        let mut buf = Vec::new();
        let n = hdr.serialize(&mut buf);
        assert_eq!(n, ETHERNET_HEADER_LEN);
        let (parsed, consumed) = EthernetHeader::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(consumed, ETHERNET_HEADER_LEN);
    }

    #[test]
    fn truncated_rejected() {
        let err = EthernetHeader::parse(&[0u8; 13]).unwrap_err();
        assert!(matches!(err, ParseError::Truncated { header: "ethernet", .. }));
    }

    #[test]
    fn ethertype_codec() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_u16(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(EtherType::Other(0x1234).to_u16(), 0x1234);
    }

    #[test]
    fn mac_display_and_broadcast() {
        assert_eq!(MacAddr::from_host_id(0x01020304).to_string(), "02:00:01:02:03:04");
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::from_host_id(9).is_broadcast());
    }
}
