//! Named header fields.
//!
//! The query language's schema exposes packet headers by name (`srcip`,
//! `tcpseq`, `pkt_len`, …). [`HeaderField`] is the bridge: each variant knows
//! how to extract itself from a [`Packet`] as a uniform `u64` word — exactly
//! how a match-action pipeline sees header fields (as bit-vectors on the
//! packet header vector).
//!
//! Queue metadata fields (`qid`, `tin`, `tout`, `qsize`, `pkt_path`) are *not*
//! header fields; they are attached by switches and live in the record types
//! of the `perfq-switch` crate.

use crate::headers::{L4Header, Packet};

/// A packet-header field addressable by the query language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeaderField {
    /// Source IPv4 address (as a 32-bit integer).
    SrcIp,
    /// Destination IPv4 address (as a 32-bit integer).
    DstIp,
    /// Transport source port (0 if none).
    SrcPort,
    /// Transport destination port (0 if none).
    DstPort,
    /// IP protocol number.
    Proto,
    /// IP TTL.
    Ttl,
    /// IP identification field.
    IpId,
    /// DSCP+ECN byte.
    Tos,
    /// Total wire length of the packet in bytes (`pkt_len`).
    PktLen,
    /// The unique packet identifier (`pkt_uniq`).
    PktUniq,
    /// TCP sequence number (0 for non-TCP).
    TcpSeq,
    /// TCP acknowledgment number (0 for non-TCP).
    TcpAck,
    /// TCP flags byte (0 for non-TCP).
    TcpFlagBits,
    /// TCP receive window (0 for non-TCP).
    TcpWindow,
    /// TCP payload length in bytes (0 for non-TCP).
    PayloadLen,
    /// UDP datagram length (0 for non-UDP).
    UdpLen,
}

impl HeaderField {
    /// All fields, in schema declaration order.
    pub const ALL: [HeaderField; 16] = [
        HeaderField::SrcIp,
        HeaderField::DstIp,
        HeaderField::SrcPort,
        HeaderField::DstPort,
        HeaderField::Proto,
        HeaderField::Ttl,
        HeaderField::IpId,
        HeaderField::Tos,
        HeaderField::PktLen,
        HeaderField::PktUniq,
        HeaderField::TcpSeq,
        HeaderField::TcpAck,
        HeaderField::TcpFlagBits,
        HeaderField::TcpWindow,
        HeaderField::PayloadLen,
        HeaderField::UdpLen,
    ];

    /// The schema name of this field.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            HeaderField::SrcIp => "srcip",
            HeaderField::DstIp => "dstip",
            HeaderField::SrcPort => "srcport",
            HeaderField::DstPort => "dstport",
            HeaderField::Proto => "proto",
            HeaderField::Ttl => "ttl",
            HeaderField::IpId => "ipid",
            HeaderField::Tos => "tos",
            HeaderField::PktLen => "pkt_len",
            HeaderField::PktUniq => "pkt_uniq",
            HeaderField::TcpSeq => "tcpseq",
            HeaderField::TcpAck => "tcpack",
            HeaderField::TcpFlagBits => "tcpflags",
            HeaderField::TcpWindow => "tcpwin",
            HeaderField::PayloadLen => "payload_len",
            HeaderField::UdpLen => "udplen",
        }
    }

    /// Look a field up by schema name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<HeaderField> {
        Self::ALL.iter().copied().find(|f| f.name() == name)
    }

    /// The field's width in bits on the wire (used for key-size accounting
    /// in the area model).
    #[must_use]
    pub fn bits(&self) -> u32 {
        match self {
            HeaderField::SrcIp | HeaderField::DstIp | HeaderField::TcpSeq | HeaderField::TcpAck => {
                32
            }
            HeaderField::SrcPort
            | HeaderField::DstPort
            | HeaderField::IpId
            | HeaderField::PktLen
            | HeaderField::TcpWindow
            | HeaderField::PayloadLen
            | HeaderField::UdpLen => 16,
            HeaderField::Proto | HeaderField::Ttl | HeaderField::Tos | HeaderField::TcpFlagBits => {
                8
            }
            HeaderField::PktUniq => 64,
        }
    }

    /// Extract the field from a packet as a `u64` word.
    ///
    /// Fields of absent headers extract as 0 — the convention of match-action
    /// hardware, where invalid header fields read as zero-filled vectors.
    #[must_use]
    pub fn extract(&self, pkt: &Packet) -> u64 {
        let h = &pkt.headers;
        match self {
            HeaderField::SrcIp => u64::from(u32::from(h.ipv4.src)),
            HeaderField::DstIp => u64::from(u32::from(h.ipv4.dst)),
            HeaderField::SrcPort => u64::from(h.l4.src_port().unwrap_or(0)),
            HeaderField::DstPort => u64::from(h.l4.dst_port().unwrap_or(0)),
            HeaderField::Proto => u64::from(h.ipv4.proto.to_u8()),
            HeaderField::Ttl => u64::from(h.ipv4.ttl),
            HeaderField::IpId => u64::from(h.ipv4.ident),
            HeaderField::Tos => u64::from(h.ipv4.dscp_ecn),
            HeaderField::PktLen => u64::from(pkt.wire_len),
            HeaderField::PktUniq => pkt.uniq,
            HeaderField::TcpSeq => match h.l4 {
                L4Header::Tcp(t) => u64::from(t.seq),
                _ => 0,
            },
            HeaderField::TcpAck => match h.l4 {
                L4Header::Tcp(t) => u64::from(t.ack),
                _ => 0,
            },
            HeaderField::TcpFlagBits => match h.l4 {
                L4Header::Tcp(t) => u64::from(t.flags.0),
                _ => 0,
            },
            HeaderField::TcpWindow => match h.l4 {
                L4Header::Tcp(t) => u64::from(t.window),
                _ => 0,
            },
            HeaderField::PayloadLen => u64::from(h.tcp_payload_len()),
            HeaderField::UdpLen => match h.l4 {
                L4Header::Udp(u) => u64::from(u.length),
                _ => 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn names_are_unique_and_resolvable() {
        for f in HeaderField::ALL {
            assert_eq!(HeaderField::by_name(f.name()), Some(f));
        }
        assert_eq!(HeaderField::by_name("nonsense"), None);
    }

    #[test]
    fn extraction_matches_builder_inputs() {
        let p = PacketBuilder::tcp()
            .src(Ipv4Addr::new(10, 0, 0, 1), 1111)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 2222)
            .seq(777)
            .payload_len(100)
            .uniq(42)
            .build();
        assert_eq!(HeaderField::SrcIp.extract(&p), u64::from(u32::from(Ipv4Addr::new(10, 0, 0, 1))));
        assert_eq!(HeaderField::SrcPort.extract(&p), 1111);
        assert_eq!(HeaderField::DstPort.extract(&p), 2222);
        assert_eq!(HeaderField::TcpSeq.extract(&p), 777);
        assert_eq!(HeaderField::PayloadLen.extract(&p), 100);
        assert_eq!(HeaderField::PktUniq.extract(&p), 42);
        assert_eq!(HeaderField::Proto.extract(&p), 6);
    }

    #[test]
    fn absent_headers_extract_zero() {
        let p = PacketBuilder::udp()
            .src(Ipv4Addr::new(1, 1, 1, 1), 53)
            .dst(Ipv4Addr::new(2, 2, 2, 2), 99)
            .payload_len(10)
            .build();
        assert_eq!(HeaderField::TcpSeq.extract(&p), 0);
        assert_eq!(HeaderField::TcpFlagBits.extract(&p), 0);
        assert_ne!(HeaderField::UdpLen.extract(&p), 0);
    }

    #[test]
    fn five_tuple_width_is_104_bits() {
        let width: u32 = [
            HeaderField::SrcIp,
            HeaderField::DstIp,
            HeaderField::SrcPort,
            HeaderField::DstPort,
            HeaderField::Proto,
        ]
        .iter()
        .map(|f| f.bits())
        .sum();
        assert_eq!(width, 104, "paper §4: 5-tuple key is 104 bits");
    }
}
