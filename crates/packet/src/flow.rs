//! Flow aggregation keys.
//!
//! The paper sizes its running example around the transport five-tuple: "The
//! aggregation key (5-tuple) requires 104 bits" (§4). [`FiveTuple`] packs to
//! exactly those 104 bits; [`FlowKey`] offers the coarser groupings that other
//! Fig. 2 queries use (source/destination IP pairs, per-queue keys, …).

use std::fmt;
use std::net::Ipv4Addr;

/// The wire width of a packed five-tuple in bits (32+32+16+16+8).
pub const FIVE_TUPLE_BITS: u32 = 104;

/// A transport five-tuple: the canonical GROUPBY key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port (0 when the protocol has no ports).
    pub src_port: u16,
    /// Destination transport port (0 when the protocol has no ports).
    pub dst_port: u16,
    /// IP protocol number.
    pub proto: u8,
}

impl FiveTuple {
    /// Pack into the low 104 bits of a `u128`, matching the hardware key
    /// layout the paper's area math assumes.
    #[must_use]
    pub fn to_bits(&self) -> u128 {
        (u128::from(u32::from(self.src_ip)) << 72)
            | (u128::from(u32::from(self.dst_ip)) << 40)
            | (u128::from(self.src_port) << 24)
            | (u128::from(self.dst_port) << 8)
            | u128::from(self.proto)
    }

    /// Inverse of [`FiveTuple::to_bits`].
    #[must_use]
    pub fn from_bits(bits: u128) -> Self {
        FiveTuple {
            src_ip: Ipv4Addr::from(((bits >> 72) & 0xffff_ffff) as u32),
            dst_ip: Ipv4Addr::from(((bits >> 40) & 0xffff_ffff) as u32),
            src_port: ((bits >> 24) & 0xffff) as u16,
            dst_port: ((bits >> 8) & 0xffff) as u16,
            proto: (bits & 0xff) as u8,
        }
    }

    /// The five-tuple of the reverse direction (src/dst swapped).
    #[must_use]
    pub fn reversed(&self) -> Self {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// The source/destination address pair (drops ports and protocol).
    #[must_use]
    pub fn ip_pair(&self) -> IpPair {
        IpPair {
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} > {}:{} p{}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.proto
        )
    }
}

/// A source/destination IPv4 address pair — the key of the paper's first
/// Fig. 2 query (`SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpPair {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
}

impl fmt::Display for IpPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} > {}", self.src_ip, self.dst_ip)
    }
}

/// A generic aggregation key: whatever tuple of fields a GROUPBY names.
///
/// Keys are materialized as a vector of `u64` field values (the switch packs
/// them into a wide bit-vector; we keep them as words and track the true bit
/// width separately for area accounting).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// The field values, in GROUPBY declaration order.
    pub words: Vec<u64>,
}

impl FlowKey {
    /// Build from field values.
    #[must_use]
    pub fn new(words: Vec<u64>) -> Self {
        FlowKey { words }
    }

    /// A single-word key.
    #[must_use]
    pub fn single(word: u64) -> Self {
        FlowKey { words: vec![word] }
    }

    /// Build from a five-tuple (5 words: srcip, dstip, sport, dport, proto).
    #[must_use]
    pub fn from_five_tuple(ft: &FiveTuple) -> Self {
        FlowKey {
            words: vec![
                u64::from(u32::from(ft.src_ip)),
                u64::from(u32::from(ft.dst_ip)),
                u64::from(ft.src_port),
                u64::from(ft.dst_port),
                u64::from(ft.proto),
            ],
        }
    }

    /// A stable 64-bit hash of the key (FNV-1a over the words). The cache
    /// crates re-hash with their own seeds; this is for map keys and display.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in &self.words {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, w) in self.words.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft() -> FiveTuple {
        FiveTuple {
            src_ip: Ipv4Addr::new(192, 168, 1, 10),
            dst_ip: Ipv4Addr::new(10, 20, 30, 40),
            src_port: 54321,
            dst_port: 443,
            proto: 6,
        }
    }

    #[test]
    fn bits_round_trip() {
        let t = ft();
        assert_eq!(FiveTuple::from_bits(t.to_bits()), t);
        // The packing uses exactly 104 bits.
        assert!(t.to_bits() < (1u128 << FIVE_TUPLE_BITS));
    }

    #[test]
    fn reversed_is_involutive() {
        let t = ft();
        assert_eq!(t.reversed().reversed(), t);
        assert_eq!(t.reversed().src_port, 443);
    }

    #[test]
    fn flow_key_from_five_tuple_differs_across_flows() {
        let a = FlowKey::from_five_tuple(&ft());
        let b = FlowKey::from_five_tuple(&ft().reversed());
        assert_ne!(a, b);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable() {
        let k = FlowKey::new(vec![1, 2, 3]);
        assert_eq!(k.fingerprint(), FlowKey::new(vec![1, 2, 3]).fingerprint());
        assert_ne!(k.fingerprint(), FlowKey::new(vec![3, 2, 1]).fingerprint());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            ft().to_string(),
            "192.168.1.10:54321 > 10.20.30.40:443 p6"
        );
        assert_eq!(FlowKey::new(vec![7, 8]).to_string(), "[7,8]");
        assert_eq!(
            ft().ip_pair().to_string(),
            "192.168.1.10 > 10.20.30.40"
        );
    }
}
