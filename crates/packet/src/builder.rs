//! Ergonomic packet construction for generators and tests.

use crate::eth::{EtherType, EthernetHeader, MacAddr};
use crate::headers::{L4Header, Packet, PacketHeaders};
use crate::ip::{IpProto, Ipv4Header, IPV4_HEADER_LEN};
use crate::tcp::{TcpFlags, TcpHeader, TCP_HEADER_LEN};
use crate::time::Nanos;
use crate::udp::{UdpHeader, UDP_HEADER_LEN};
use std::net::Ipv4Addr;

/// Builder for [`Packet`]s. Chooses consistent lengths across layers so a
/// built packet always re-parses to itself.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    proto: IpProto,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    window: u16,
    ttl: u8,
    ident: u16,
    payload_len: u16,
    uniq: u64,
    arrival: Nanos,
}

impl PacketBuilder {
    fn new(proto: IpProto) -> Self {
        PacketBuilder {
            proto,
            src_ip: Ipv4Addr::UNSPECIFIED,
            dst_ip: Ipv4Addr::UNSPECIFIED,
            src_port: 0,
            dst_port: 0,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 65535,
            ttl: 64,
            ident: 0,
            payload_len: 0,
            uniq: 0,
            arrival: Nanos::ZERO,
        }
    }

    /// Start building a TCP packet.
    #[must_use]
    pub fn tcp() -> Self {
        Self::new(IpProto::Tcp)
    }

    /// Start building a UDP packet.
    #[must_use]
    pub fn udp() -> Self {
        Self::new(IpProto::Udp)
    }

    /// Start building a packet with an arbitrary IP protocol (opaque L4).
    #[must_use]
    pub fn proto(proto: IpProto) -> Self {
        Self::new(proto)
    }

    /// Set the source address and port.
    #[must_use]
    pub fn src(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.src_ip = ip;
        self.src_port = port;
        self
    }

    /// Set the destination address and port.
    #[must_use]
    pub fn dst(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.dst_ip = ip;
        self.dst_port = port;
        self
    }

    /// Set the TCP sequence number.
    #[must_use]
    pub fn seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Set the TCP acknowledgment number.
    #[must_use]
    pub fn ack(mut self, ack: u32) -> Self {
        self.ack = ack;
        self
    }

    /// Set the TCP flags.
    #[must_use]
    pub fn flags(mut self, flags: TcpFlags) -> Self {
        self.flags = flags;
        self
    }

    /// Set the TCP receive window.
    #[must_use]
    pub fn window(mut self, window: u16) -> Self {
        self.window = window;
        self
    }

    /// Set the IP TTL.
    #[must_use]
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Set the IP identification field.
    #[must_use]
    pub fn ident(mut self, ident: u16) -> Self {
        self.ident = ident;
        self
    }

    /// Set the transport payload length in bytes.
    #[must_use]
    pub fn payload_len(mut self, len: u16) -> Self {
        self.payload_len = len;
        self
    }

    /// Set the unique packet id (`pkt_uniq`).
    #[must_use]
    pub fn uniq(mut self, uniq: u64) -> Self {
        self.uniq = uniq;
        self
    }

    /// Set the ingress arrival time.
    #[must_use]
    pub fn arrival(mut self, t: Nanos) -> Self {
        self.arrival = t;
        self
    }

    /// Finish, producing a consistent [`Packet`].
    #[must_use]
    pub fn build(self) -> Packet {
        let l4_len = match self.proto {
            IpProto::Tcp => TCP_HEADER_LEN,
            IpProto::Udp => UDP_HEADER_LEN,
            _ => 0,
        };
        let total_len = (IPV4_HEADER_LEN + l4_len) as u16 + self.payload_len;
        let l4 = match self.proto {
            IpProto::Tcp => L4Header::Tcp(TcpHeader {
                src_port: self.src_port,
                dst_port: self.dst_port,
                seq: self.seq,
                ack: self.ack,
                flags: self.flags,
                window: self.window,
            }),
            IpProto::Udp => L4Header::Udp(UdpHeader {
                src_port: self.src_port,
                dst_port: self.dst_port,
                length: UDP_HEADER_LEN as u16 + self.payload_len,
            }),
            _ => L4Header::Opaque,
        };
        let headers = PacketHeaders {
            eth: EthernetHeader {
                dst: MacAddr::from_host_id(u32::from(self.dst_ip)),
                src: MacAddr::from_host_id(u32::from(self.src_ip)),
                ethertype: EtherType::Ipv4,
            },
            ipv4: Ipv4Header {
                dscp_ecn: 0,
                total_len,
                ident: self.ident,
                flags_frag: 0x4000,
                ttl: self.ttl,
                proto: self.proto,
                src: self.src_ip,
                dst: self.dst_ip,
            },
            l4,
        };
        Packet {
            headers,
            wire_len: crate::eth::ETHERNET_HEADER_LEN as u16 + total_len,
            uniq: self.uniq,
            arrival: self.arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_are_consistent_across_layers() {
        let p = PacketBuilder::tcp()
            .src(Ipv4Addr::new(1, 2, 3, 4), 10)
            .dst(Ipv4Addr::new(5, 6, 7, 8), 20)
            .payload_len(1000)
            .build();
        // eth(14) + ip(20) + tcp(20) + payload(1000)
        assert_eq!(p.wire_len, 1054);
        assert_eq!(p.headers.ipv4.total_len, 1040);
        assert_eq!(p.headers.tcp_payload_len(), 1000);
    }

    #[test]
    fn udp_length_field_includes_header() {
        let p = PacketBuilder::udp()
            .src(Ipv4Addr::new(1, 2, 3, 4), 10)
            .dst(Ipv4Addr::new(5, 6, 7, 8), 20)
            .payload_len(100)
            .build();
        match p.headers.l4 {
            L4Header::Udp(u) => assert_eq!(u.length, 108),
            _ => panic!("expected udp"),
        }
    }

    #[test]
    fn defaults_are_sane() {
        let p = PacketBuilder::tcp().build();
        assert_eq!(p.headers.ipv4.ttl, 64);
        assert_eq!(p.arrival, Nanos::ZERO);
        assert!(p.headers.is_tcp());
    }
}
