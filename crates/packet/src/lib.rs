//! # perfq-packet
//!
//! Packet model for the `perfq` system — the reproduction of *"Hardware-Software
//! Co-Design for Network Performance Measurement"* (HotNets 2016).
//!
//! This crate is the bottom-most substrate: it defines what a packet *is* for
//! every other crate. It provides:
//!
//! * [`time`] — nanosecond timestamps ([`Nanos`]) with an explicit *infinity*
//!   used by the paper's schema to mark dropped packets (`tout = ∞`).
//! * [`eth`], [`ip`], [`tcp`], [`udp`] — wire-format headers with parse and
//!   serialize routines, exercising the same code path a programmable switch
//!   parser would (header-by-header, offset-driven).
//! * [`headers`] — the parsed, in-memory view ([`PacketHeaders`]) and the
//!   [`Packet`] carried through the simulator.
//! * [`flow`] — the transport [`FiveTuple`] aggregation key (104 bits on the
//!   wire, per the paper's §4 sizing) and coarser flow keys.
//! * [`field`] — named header fields ([`HeaderField`]) that the query language
//!   schema binds to, with uniform `u64` extraction.
//! * [`wire`] — full-packet serialization / parsing (Ethernet → IP → L4).
//! * [`builder`] — an ergonomic [`PacketBuilder`] for tests and generators.
//!
//! Everything here is deterministic, allocation-light, and `unsafe`-free.

//!
//! For the paper-section → crate/file map of the whole workspace, see
//! `ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod eth;
pub mod field;
pub mod flow;
pub mod headers;
pub mod ip;
pub mod tcp;
pub mod time;
pub mod udp;
pub mod wire;

pub use builder::PacketBuilder;
pub use eth::{EtherType, EthernetHeader, MacAddr};
pub use field::HeaderField;
pub use flow::{FiveTuple, FlowKey, IpPair};
pub use headers::{L4Header, Packet, PacketHeaders};
pub use ip::{IpProto, Ipv4Header};
pub use tcp::{TcpFlags, TcpHeader};
pub use time::Nanos;
pub use udp::UdpHeader;

/// Errors produced when parsing wire bytes into headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer ended before the fixed part of a header.
    Truncated {
        /// Header being parsed when the buffer ran out.
        header: &'static str,
        /// Bytes required by that header.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A version/length field had a value the parser cannot accept.
    Malformed {
        /// Header being parsed.
        header: &'static str,
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// The EtherType / IP protocol is one this parser has no branch for.
    UnsupportedProtocol {
        /// Protocol discriminator layer (e.g. "ethertype", "ip-proto").
        layer: &'static str,
        /// The numeric value found.
        value: u32,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated {
                header,
                needed,
                available,
            } => write!(
                f,
                "truncated {header} header: need {needed} bytes, have {available}"
            ),
            ParseError::Malformed { header, reason } => {
                write!(f, "malformed {header} header: {reason}")
            }
            ParseError::UnsupportedProtocol { layer, value } => {
                write!(f, "unsupported protocol at {layer}: {value:#x}")
            }
        }
    }
}

impl std::error::Error for ParseError {}
