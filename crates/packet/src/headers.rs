//! The in-memory packet view carried through the simulator.

use crate::eth::EthernetHeader;
use crate::flow::FiveTuple;
use crate::ip::{IpProto, Ipv4Header};
use crate::tcp::TcpHeader;
use crate::time::Nanos;
use crate::udp::UdpHeader;

/// The transport-layer header variant of a parsed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L4Header {
    /// A TCP segment.
    Tcp(TcpHeader),
    /// A UDP datagram.
    Udp(UdpHeader),
    /// A transport protocol the parse graph does not descend into; the raw
    /// IP protocol number is preserved in the IPv4 header.
    Opaque,
}

impl L4Header {
    /// Source port, if the transport protocol has one.
    #[must_use]
    pub fn src_port(&self) -> Option<u16> {
        match self {
            L4Header::Tcp(t) => Some(t.src_port),
            L4Header::Udp(u) => Some(u.src_port),
            L4Header::Opaque => None,
        }
    }

    /// Destination port, if the transport protocol has one.
    #[must_use]
    pub fn dst_port(&self) -> Option<u16> {
        match self {
            L4Header::Tcp(t) => Some(t.dst_port),
            L4Header::Udp(u) => Some(u.dst_port),
            L4Header::Opaque => None,
        }
    }
}

/// All parsed headers of one packet — the schema's `pkt_hdr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeaders {
    /// Link layer.
    pub eth: EthernetHeader,
    /// Network layer.
    pub ipv4: Ipv4Header,
    /// Transport layer.
    pub l4: L4Header,
}

impl PacketHeaders {
    /// The transport five-tuple (ports are zero for port-less protocols, the
    /// convention hardware flow tables use for non-TCP/UDP traffic).
    #[must_use]
    pub fn five_tuple(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.ipv4.src,
            dst_ip: self.ipv4.dst,
            src_port: self.l4.src_port().unwrap_or(0),
            dst_port: self.l4.dst_port().unwrap_or(0),
            proto: self.ipv4.proto.to_u8(),
        }
    }

    /// TCP payload length in bytes, derived from the IP total length
    /// (headers are fixed 20 + 20 bytes because options are unsupported).
    /// Returns 0 for non-TCP packets.
    #[must_use]
    pub fn tcp_payload_len(&self) -> u16 {
        match self.l4 {
            L4Header::Tcp(_) => self.ipv4.total_len.saturating_sub(40),
            _ => 0,
        }
    }

    /// True iff the packet is TCP.
    #[must_use]
    pub fn is_tcp(&self) -> bool {
        matches!(self.l4, L4Header::Tcp(_))
    }

    /// True iff the packet is UDP.
    #[must_use]
    pub fn is_udp(&self) -> bool {
        matches!(self.l4, L4Header::Udp(_))
    }
}

/// A packet inside the simulator: parsed headers plus trace metadata.
///
/// `uniq` realizes the paper's `pkt_uniq` — "a combination of invariant packet
/// headers" that identifies each packet uniquely. Generators assign it; the
/// network never modifies it, so multi-hop observations of one packet share it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Parsed headers.
    pub headers: PacketHeaders,
    /// Total wire length in bytes (the schema's `pkt_len`).
    pub wire_len: u16,
    /// Globally unique packet identifier (`pkt_uniq`).
    pub uniq: u64,
    /// Arrival time at the network ingress.
    pub arrival: Nanos,
}

impl Packet {
    /// The transport five-tuple.
    #[must_use]
    pub fn five_tuple(&self) -> FiveTuple {
        self.headers.five_tuple()
    }

    /// The IP protocol.
    #[must_use]
    pub fn proto(&self) -> IpProto {
        self.headers.ipv4.proto
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn five_tuple_of_tcp_packet() {
        let p = PacketBuilder::tcp()
            .src(Ipv4Addr::new(10, 0, 0, 1), 1234)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 80)
            .seq(42)
            .payload_len(100)
            .build();
        let ft = p.five_tuple();
        assert_eq!(ft.src_port, 1234);
        assert_eq!(ft.dst_port, 80);
        assert_eq!(ft.proto, 6);
        assert!(p.headers.is_tcp());
        assert_eq!(p.headers.tcp_payload_len(), 100);
    }

    #[test]
    fn udp_has_ports_but_no_tcp_payload() {
        let p = PacketBuilder::udp()
            .src(Ipv4Addr::new(1, 1, 1, 1), 53)
            .dst(Ipv4Addr::new(2, 2, 2, 2), 9999)
            .payload_len(64)
            .build();
        assert!(p.headers.is_udp());
        assert_eq!(p.headers.tcp_payload_len(), 0);
        assert_eq!(p.headers.l4.src_port(), Some(53));
    }

    #[test]
    fn opaque_l4_has_no_ports() {
        let p = PacketBuilder::proto(IpProto::Icmp)
            .src(Ipv4Addr::new(1, 1, 1, 1), 0)
            .dst(Ipv4Addr::new(2, 2, 2, 2), 0)
            .build();
        assert_eq!(p.headers.l4.src_port(), None);
        assert_eq!(p.five_tuple().src_port, 0);
        assert_eq!(p.five_tuple().proto, 1);
    }
}
