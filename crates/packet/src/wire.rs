//! Full-packet wire serialization and parsing.
//!
//! This is the code path a programmable parser walks: Ethernet, branch on
//! EtherType, IPv4, branch on protocol, then TCP or UDP. The simulator mostly
//! carries parsed [`Packet`]s, but trace files store wire bytes, and the
//! parser-stage benchmarks measure this exact routine.

use crate::eth::{EtherType, EthernetHeader};
use crate::headers::{L4Header, Packet, PacketHeaders};
use crate::ip::{IpProto, Ipv4Header};
use crate::tcp::TcpHeader;
use crate::time::Nanos;
use crate::udp::UdpHeader;
use crate::ParseError;

/// Serialize a packet's headers to wire bytes, padding the payload region
/// with zeros so the buffer length equals `pkt.wire_len`.
#[must_use]
pub fn serialize(pkt: &Packet) -> Vec<u8> {
    let mut out = Vec::with_capacity(pkt.wire_len as usize);
    pkt.headers.eth.serialize(&mut out);
    pkt.headers.ipv4.serialize(&mut out);
    match &pkt.headers.l4 {
        L4Header::Tcp(t) => {
            t.serialize(&mut out);
        }
        L4Header::Udp(u) => {
            u.serialize(&mut out);
        }
        L4Header::Opaque => {}
    }
    out.resize(pkt.wire_len as usize, 0);
    out
}

/// Parse wire bytes into [`PacketHeaders`], walking the same parse graph a
/// programmable switch parser would.
pub fn parse_headers(buf: &[u8]) -> Result<PacketHeaders, ParseError> {
    let (eth, mut off) = EthernetHeader::parse(buf)?;
    match eth.ethertype {
        EtherType::Ipv4 => {}
        other => {
            return Err(ParseError::UnsupportedProtocol {
                layer: "ethertype",
                value: u32::from(other.to_u16()),
            })
        }
    }
    let (ipv4, ip_len) = Ipv4Header::parse(&buf[off..])?;
    off += ip_len;
    let l4 = match ipv4.proto {
        IpProto::Tcp => {
            let (t, _) = TcpHeader::parse(&buf[off..])?;
            L4Header::Tcp(t)
        }
        IpProto::Udp => {
            let (u, _) = UdpHeader::parse(&buf[off..])?;
            L4Header::Udp(u)
        }
        _ => L4Header::Opaque,
    };
    Ok(PacketHeaders { eth, ipv4, l4 })
}

/// Parse wire bytes into a full [`Packet`], supplying trace metadata.
pub fn parse_packet(buf: &[u8], uniq: u64, arrival: Nanos) -> Result<Packet, ParseError> {
    let headers = parse_headers(buf)?;
    Ok(Packet {
        headers,
        wire_len: buf.len() as u16,
        uniq,
        arrival,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn tcp_round_trip() {
        let p = PacketBuilder::tcp()
            .src(Ipv4Addr::new(10, 0, 0, 1), 5000)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 443)
            .seq(12345)
            .ack(999)
            .payload_len(200)
            .uniq(77)
            .arrival(Nanos(1000))
            .build();
        let bytes = serialize(&p);
        assert_eq!(bytes.len(), p.wire_len as usize);
        let q = parse_packet(&bytes, 77, Nanos(1000)).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn udp_round_trip() {
        let p = PacketBuilder::udp()
            .src(Ipv4Addr::new(1, 1, 1, 1), 53)
            .dst(Ipv4Addr::new(8, 8, 8, 8), 5353)
            .payload_len(48)
            .build();
        let bytes = serialize(&p);
        let q = parse_packet(&bytes, 0, Nanos::ZERO).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn opaque_round_trip() {
        let p = PacketBuilder::proto(IpProto::Icmp)
            .src(Ipv4Addr::new(1, 1, 1, 1), 0)
            .dst(Ipv4Addr::new(2, 2, 2, 2), 0)
            .payload_len(8)
            .build();
        let bytes = serialize(&p);
        let q = parse_packet(&bytes, 0, Nanos::ZERO).unwrap();
        assert_eq!(q.headers.l4, L4Header::Opaque);
        assert_eq!(q, p);
    }

    #[test]
    fn non_ipv4_rejected() {
        let p = PacketBuilder::tcp().build();
        let mut bytes = serialize(&p);
        bytes[12] = 0x86;
        bytes[13] = 0xdd; // IPv6 ethertype
        assert!(matches!(
            parse_headers(&bytes).unwrap_err(),
            ParseError::UnsupportedProtocol { layer: "ethertype", .. }
        ));
    }

    #[test]
    fn ip_checksum_present_on_wire() {
        let p = PacketBuilder::tcp().build();
        let bytes = serialize(&p);
        assert!(Ipv4Header::verify_checksum(&bytes[14..]));
    }
}
