//! Multi-query: every Fig. 2 query installed at once, under one SRAM budget.
//!
//! ```sh
//! cargo run --release --example multi_query
//! ```
//!
//! §3.3's premise is that a *fixed* slice of switch SRAM (~32 Mbit, under
//! 2.5 % of the die) is shared by every concurrently-installed query. This
//! example makes that concrete: the area planner divides the budget across
//! all seven Fig. 2 programs (resizing each cache to its slice), and one
//! shared replay pass answers all of them — the network event loop runs
//! once, each record's row materializes once, and every program's compiled
//! plan executes over it.

use perfq::prelude::*;
use perfq_kvstore::area;

const MBIT: u64 = 1024 * 1024;

fn main() {
    // ------------------------------------------------------------------
    // 1. Install all seven Fig. 2 queries under the §4 budget.
    // ------------------------------------------------------------------
    let programs: Vec<CompiledProgram> = fig2::ALL
        .iter()
        .map(|q| {
            compile_query(q.source, &fig2::default_params(), CompileOptions::default())
                .expect("the paper's queries compile")
        })
        .collect();

    let budget = 32 * MBIT;
    let (mut multi, plan) =
        MultiRuntime::provisioned(programs, budget).expect("the budget fits all queries");

    println!(
        "SRAM budget: {} Mbit → {:.2}% of a {} mm² die ({} queries installed)\n",
        area::bits_to_mbit(budget),
        plan.area_fraction(area::MIN_CHIP_AREA_MM2) * 100.0,
        area::MIN_CHIP_AREA_MM2,
        fig2::ALL.len(),
    );
    println!("{:<34} {:>10} {:>22}", "query", "slice", "store geometries");
    let mut allocs = plan.queries.iter();
    for (q, compiled) in fig2::ALL.iter().zip(multi.runtimes()) {
        let geoms: Vec<String> = compiled
            .compiled()
            .stores
            .iter()
            .flatten()
            .map(|s| format!("{} ({}b pairs)", s.geometry, s.pair_bits()))
            .collect();
        if geoms.is_empty() {
            println!("{:<34} {:>10} {:>22}", q.name, "—", "no aggregation state");
            continue;
        }
        let alloc = allocs.next().expect("plan covers store-bearing programs");
        println!(
            "{:<34} {:>7.2} Mbit {}",
            q.name,
            area::bits_to_mbit(alloc.slice_bits),
            geoms.join(", "),
        );
    }
    println!(
        "\nallocated {:.2} of {:.0} Mbit (power-of-two rounding slack stays on-die)\n",
        area::bits_to_mbit(plan.allocated_bits()),
        area::bits_to_mbit(budget),
    );

    // ------------------------------------------------------------------
    // 2. One shared replay pass answers every query.
    // ------------------------------------------------------------------
    let trace = SyntheticTrace::new(TraceConfig::test_small(7)).take(40_000);
    // One slow port with a deep queue: the workload overloads it, so the
    // congestion-sensitive queries (loss rate, high latency, p99 queue
    // size) have something to report.
    let mut network = Network::new(NetworkConfig {
        switch: SwitchConfig {
            ports: 1,
            port_rate_bps: 1e8,
            queue_capacity: 64,
            ..Default::default()
        },
        ..Default::default()
    });
    multi.process_network(&mut network, trace, 256);
    multi.finish();
    println!(
        "one ingest pass: {} records through the event loop, {} plans executed per record\n",
        multi.records(),
        multi.len(),
    );

    // ------------------------------------------------------------------
    // 3. Every query's results, from its own slice of the budget.
    // ------------------------------------------------------------------
    for (q, rs) in fig2::ALL.iter().zip(multi.collect()) {
        let t = rs.tables.last().expect("every program yields a table");
        println!(
            "{:<34} {:>6} result rows (of {} matched)",
            q.name,
            t.rows.len(),
            t.total_matched
        );
    }
}
