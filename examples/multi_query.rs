//! Multi-query: every Fig. 2 query installed at once, under one SRAM budget,
//! with cross-query execution sharing.
//!
//! ```sh
//! cargo run --release --example multi_query
//! ```
//!
//! §3.3's premise is that a *fixed* slice of switch SRAM (~32 Mbit, under
//! 2.5 % of the die) is shared by every concurrently-installed query. This
//! example makes that concrete: the area planner divides the budget across
//! all seven Fig. 2 programs **plus the §4 running-example counter**
//! (resizing each cache to its slice), and one shared replay pass answers
//! all of them — the network event loop runs once, each record's row
//! materializes once, each *unique* filter/key evaluates once, and
//! structurally-identical stores collapse into one (the running example is
//! verbatim the loss-rate program's `R1`, so its store is charged to the
//! budget once and executed once).

use perfq::prelude::*;
use perfq_kvstore::area;

const MBIT: u64 = 1024 * 1024;

/// The §4 running example — also the loss-rate program's `R1`, verbatim.
const FIVE_TUPLE_COUNTER: &str = "SELECT COUNT GROUPBY 5tuple\n";

fn main() {
    // ------------------------------------------------------------------
    // 1. Install the §4 counter + all seven Fig. 2 queries under the
    //    §4 budget.
    // ------------------------------------------------------------------
    let mut names = vec!["Per-flow (5-tuple) counters [§4]"];
    names.extend(fig2::ALL.iter().map(|q| q.name));
    let sources: Vec<&str> = std::iter::once(FIVE_TUPLE_COUNTER)
        .chain(fig2::ALL.iter().map(|q| q.source))
        .collect();
    let programs: Vec<CompiledProgram> = sources
        .iter()
        .map(|src| {
            compile_query(src, &fig2::default_params(), CompileOptions::default())
                .expect("the paper's queries compile")
        })
        .collect();

    let budget = 32 * MBIT;
    let (mut multi, plan) =
        MultiRuntime::provisioned(programs, budget).expect("the budget fits all queries");

    println!(
        "SRAM budget: {} Mbit → {:.2}% of a {} mm² die ({} queries installed)\n",
        area::bits_to_mbit(budget),
        plan.area_fraction(area::MIN_CHIP_AREA_MM2) * 100.0,
        area::MIN_CHIP_AREA_MM2,
        names.len(),
    );
    println!("{:<34} {:>10} {:>22}", "query", "slice", "store geometries");
    let mut allocs = plan.queries.iter();
    for (name, compiled) in names.iter().zip(multi.runtimes()) {
        let geoms: Vec<String> = compiled
            .compiled()
            .stores
            .iter()
            .flatten()
            .map(|s| format!("{} ({}b pairs)", s.geometry, s.pair_bits()))
            .collect();
        if geoms.is_empty() {
            println!("{:<34} {:>10} {:>22}", name, "—", "no aggregation state");
            continue;
        }
        let alloc = allocs.next().expect("plan covers store-bearing programs");
        let dedup: usize = alloc.stores.iter().filter(|s| s.deduped).count();
        println!(
            "{:<34} {:>7.2} Mbit {}{}",
            name,
            area::bits_to_mbit(alloc.slice_bits),
            geoms.join(", "),
            if dedup > 0 {
                format!("  [{dedup} store(s) shared, charged once]")
            } else {
                String::new()
            },
        );
    }
    println!(
        "\nallocated {:.2} of {:.0} Mbit — {} store deduplicated, {:.2} Mbit reclaimed \
         and folded back into every physical cache\n",
        area::bits_to_mbit(plan.allocated_bits()),
        area::bits_to_mbit(budget),
        plan.deduped_stores(),
        area::bits_to_mbit(plan.reclaimed_bits()),
    );

    // ------------------------------------------------------------------
    // 2. What the install-time sharing pass decided.
    // ------------------------------------------------------------------
    let report = multi.sharing().clone();
    println!("cross-query sharing under this install:");
    for s in &report.stores {
        println!(
            "  store  {}/{} ← shares the physical store of {}/{}",
            names[s.alias.0], s.alias.1, names[s.owner.0], s.owner.1,
        );
    }
    for f in &report.filters {
        println!(
            "  filter `{}` evaluated once per record for {} queries ({})",
            f.desc,
            f.users.len(),
            f.users
                .iter()
                .map(|(p, q)| format!("{}/{q}", names[*p]))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    for k in &report.keys {
        println!(
            "  key    ({}) built once per record for {} queries",
            k.desc,
            k.users.len(),
        );
    }
    println!();

    // ------------------------------------------------------------------
    // 3. One shared replay pass answers every query.
    // ------------------------------------------------------------------
    let trace = SyntheticTrace::new(TraceConfig::test_small(7)).take(40_000);
    // One slow port with a deep queue: the workload overloads it, so the
    // congestion-sensitive queries (loss rate, high latency, p99 queue
    // size) have something to report.
    let mut network = Network::new(NetworkConfig {
        switch: SwitchConfig {
            ports: 1,
            port_rate_bps: 1e8,
            queue_capacity: 64,
            ..Default::default()
        },
        ..Default::default()
    });
    multi.process_network(&mut network, trace, 256);
    multi.finish();
    println!(
        "one ingest pass: {} records through the event loop, {} plans executed per record\n",
        multi.records(),
        multi.len(),
    );

    // ------------------------------------------------------------------
    // 4. Every query's results, from its own slice of the budget.
    // ------------------------------------------------------------------
    for (name, rs) in names.iter().zip(multi.collect()) {
        let t = rs.tables.last().expect("every program yields a table");
        println!(
            "{:<34} {:>6} result rows (of {} matched)",
            name,
            t.rows.len(),
            t.total_matched
        );
    }
}
