//! TCP health monitoring: sequence-number anomalies per connection.
//!
//! ```sh
//! cargo run --release --example tcp_health
//! ```
//!
//! Runs the paper's two TCP-anomaly queries side by side on flows with
//! injected loss and reordering, and shows the practical consequence of the
//! linear-in-state boundary: `outofseq` (linear, window-1) stays **exact**
//! under cache pressure, while `nonmt` (non-linear) degrades to per-epoch
//! values with invalid keys — exactly the trade §3.2 describes.

use perfq::prelude::*;
use perfq::trace::TcpDynamics;

fn main() {
    // A TCP-heavy trace with elevated anomaly rates.
    let cfg = TraceConfig {
        tcp_fraction: 1.0,
        tcp_dynamics: TcpDynamics::lossy(),
        duration: Nanos::from_secs(1),
        ..TraceConfig::test_small(11)
    };
    let stats = TraceStats::from_packets(SyntheticTrace::new(cfg.clone()));
    println!("workload: {}\n", stats.summary());

    let both = "\
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq:
        oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

def nonmt ((maxseq, nm_count), tcpseq):
    if maxseq > tcpseq:
        nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

OOS = SELECT 5tuple, outofseq GROUPBY 5tuple WHERE proto == TCP
NMT = SELECT 5tuple, nonmt GROUPBY 5tuple WHERE proto == TCP
";

    // A deliberately small cache: ~6% of flows fit.
    let opts = CompileOptions {
        cache_pairs: 128,
        ways: 8,
        ..Default::default()
    };
    let compiled = compile_query(both, &fig2::default_params(), opts).expect("compiles");
    println!(
        "fold classes: outofseq = {} | nonmt = {}\n",
        perfq::core::foldops::describe_class(compiled.program.query("OOS").unwrap().fold().unwrap()),
        perfq::core::foldops::describe_class(compiled.program.query("NMT").unwrap().fold().unwrap()),
    );

    let mut network = Network::new(NetworkConfig::default());
    let mut runtime = Runtime::new(compiled.clone());
    let mut oracle = Oracle::new(compiled);
    network.run(SyntheticTrace::new(cfg), |r| {
        runtime.process_record(&r);
        oracle.process_record(&r);
    });
    runtime.finish();

    let got = runtime.collect();
    let want = oracle.collect();

    for name in ["OOS", "NMT"] {
        let g = got.table(name).expect("table");
        let w = want.table(name).expect("table");
        let count_col = g.schema.len() - 1; // the anomaly counter
        let total: i64 = g.rows.iter().map(|r| r.values[count_col].as_i64()).sum();
        let truth: i64 = w.rows.iter().map(|r| r.values[count_col].as_i64()).sum();
        let stats = match name {
            "OOS" => runtime.store_stats(0),
            _ => runtime.store_stats(1),
        }
        .expect("store");
        println!("{name}: {} flows, {} anomalies (oracle: {})", g.rows.len(), total, truth);
        println!(
            "     cache: {:.1}% hits, {} evictions | valid keys: {:.1}%",
            stats.hit_rate() * 100.0,
            stats.evictions,
            g.accuracy() * 100.0
        );
        match perfq::core::diff_tables(g, w, 1e-9) {
            None => println!("     == matches the oracle exactly (linear-in-state merge)\n"),
            Some(_) => println!(
                "     != diverges from the oracle: non-linear folds cannot be merged;\n     \
                 invalid keys keep per-epoch values that are each correct over\n     \
                 their own interval (§3.2)\n"
            ),
        }
    }
    println!(
        "takeaway: rewriting a monitoring question in linear-in-state form\n\
         (as outofseq does with its lastseq window variable) buys exactness\n\
         under any cache pressure; nonmt pays with invalid keys instead."
    );
}
