//! Latency hunting across a multi-hop fabric.
//!
//! ```sh
//! cargo run --release --example latency_hunt
//! ```
//!
//! Uses query *composition* — the paper's distinctive language feature — to
//! find flows whose packets accumulate high end-to-end latency across
//! multiple queues, then drills into per-queue EWMA latencies to find which
//! hop is responsible. Demonstrates that per-packet observations from
//! different switches aggregate coherently via `pkt_uniq`.

use perfq::prelude::*;

fn main() {
    // Three switches in a chain; the middle one has a slow port.
    let mut network = Network::new(NetworkConfig {
        topology: Topology::Linear(3),
        switch: SwitchConfig {
            ports: 4,
            port_rate_bps: 3.5e7, // 35 Mbit/s ports: hot ports congest
            queue_capacity: 256,
        },
        ..Default::default()
    });

    let cfg = TraceConfig {
        duration: Nanos::from_millis(400),
        flows_per_sec: 4_000.0,
        ..TraceConfig::test_small(23)
    };
    println!(
        "workload: {}\n",
        TraceStats::from_packets(SyntheticTrace::new(cfg.clone())).summary()
    );

    // Composed query: per-packet end-to-end latency, re-aggregated per flow
    // (Fig. 2, "Per-flow high latency packets") — plus a per-queue EWMA for
    // the drill-down.
    let query = "\
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

R1 = SELECT pkt_uniq, SUM(tout-tin) GROUPBY pkt_uniq
R2 = SELECT 5tuple FROM R1 GROUPBY 5tuple
     WHERE SUM(tout-tin) > L

QLAT = SELECT qid, ewma GROUPBY qid
";
    let mut params = fig2::default_params();
    params.insert("L".to_string(), Value::Int(3_000_000)); // 3 ms end-to-end
    params.insert("alpha".to_string(), Value::Float(0.05));

    let compiled = compile_query(query, &params, CompileOptions::default()).expect("compiles");
    let mut runtime = Runtime::new(compiled);
    runtime.process_network(&mut network, SyntheticTrace::new(cfg), 256);
    runtime.finish();

    let results = runtime.collect();

    // Which flows accumulated > 3 ms across the chain?
    let slow = results.table("R2").expect("R2 defined");
    println!(
        "flows with packets exceeding 3 ms end-to-end latency: {}",
        slow.rows.len()
    );
    for row in slow.rows.iter().take(6) {
        let src = row.values[slow.schema.index_of("srcip").unwrap()].as_i64() as u32;
        let dst = row.values[slow.schema.index_of("dstip").unwrap()].as_i64() as u32;
        println!(
            "  {} → {}",
            std::net::Ipv4Addr::from(src),
            std::net::Ipv4Addr::from(dst)
        );
    }

    // Which queue is the bottleneck?
    let qlat = results.table("QLAT").expect("QLAT defined");
    let mut rows = qlat.rows.clone();
    let ewma_col = qlat.schema.index_of("lat_est").unwrap();
    let qid_col = qlat.schema.index_of("qid").unwrap();
    rows.sort_by(|a, b| b.values[ewma_col].as_f64().total_cmp(&a.values[ewma_col].as_f64()));
    println!("\nper-queue EWMA latency (worst first):");
    for row in rows.iter().take(6) {
        let qid = row.values[qid_col].as_i64();
        let lat_us = row.values[ewma_col].as_f64() / 1e3;
        println!(
            "  switch {} port {}: {:.1} µs",
            qid / 64,
            qid % 64,
            lat_us
        );
    }
    println!(
        "\ncomposition at work: R1 aggregates each packet's latency over all\n\
         queues it visited (keyed by pkt_uniq), R2 re-aggregates R1's stream\n\
         per flow — two cascaded key-value stores in the data plane."
    );
}
