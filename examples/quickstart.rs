//! Quickstart: write a query, run a workload, read results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline on the paper's first example (per-flow packet and
//! byte counters), then shows the split key-value store at work: the same
//! query with a small cache, exact counts regardless of evictions.

use perfq::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A declarative performance query (Fig. 2, row 1).
    // ------------------------------------------------------------------
    let query = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip";
    println!("query:\n  {query}\n");

    let compiled = compile_query(query, &fig2::default_params(), CompileOptions::default())
        .expect("the paper's queries compile");

    // What did the compiler decide?
    let plan = compiled.stores[0].as_ref().expect("one aggregation");
    println!(
        "compiled: one key-value store, {}-bit key + {}-bit value, {} cache, {} eviction",
        plan.key_bits,
        plan.value_bits,
        plan.geometry,
        plan.policy.name(),
    );
    let fold = compiled.program.queries[0].fold().expect("aggregation");
    println!(
        "linearity: {} → merge strategy \"{}\"\n",
        fold.class.paper_verdict(),
        perfq::core::foldops::describe_class(fold)
    );

    // ------------------------------------------------------------------
    // 2. A workload through a switch.
    // ------------------------------------------------------------------
    let trace = SyntheticTrace::new(TraceConfig::test_small(7));
    let stats = TraceStats::from_packets(SyntheticTrace::new(TraceConfig::test_small(7)));
    println!("workload: {}\n", stats.summary());

    let mut network = Network::new(NetworkConfig::default());
    let mut runtime = Runtime::new(compiled);
    runtime.process_network(&mut network, trace, 256);
    runtime.finish();

    // ------------------------------------------------------------------
    // 3. Results, pulled from the backing store.
    // ------------------------------------------------------------------
    let results = runtime.collect();
    let mut table = results.tables[0].clone();
    table.sort();
    println!("{} flow pairs measured; first rows:", table.rows.len());
    println!("{table}");

    let hw = runtime.store_stats(0).expect("store exists");
    println!(
        "cache behaviour: {} packets, {:.1}% hit rate, {} evictions ({:.2}% of packets)",
        hw.packets,
        hw.hit_rate() * 100.0,
        hw.evictions,
        hw.eviction_fraction() * 100.0
    );
    println!(
        "\n(Counters are linear-in-state: every eviction merged exactly into \
         the backing store,\n so these counts are exact no matter how small \
         the cache — try CompileOptions {{ cache_pairs: 64, .. }}.)"
    );
}
