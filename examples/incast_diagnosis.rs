//! Incast diagnosis: the paper's motivating scenario for switch-side
//! measurement.
//!
//! ```sh
//! cargo run --release --example incast_diagnosis
//! ```
//!
//! §5 argues endpoint telemetry cannot answer "which applications contribute
//! to TCP incast at a particular queue" — the needed data is scattered over
//! endpoints, and dropped packets take their telemetry with them. Here we
//! build the scenario: many servers answer one client simultaneously inside
//! a leaf–spine fabric, the client's leaf port melts, and two queries
//! localize the hot queue and rank the contributing flows — from switch
//! records alone.

use perfq::prelude::*;
use perfq::trace::incast;

fn main() {
    // ------------------------------------------------------------------
    // The workload: 40-way incast bursts on top of light background load.
    // ------------------------------------------------------------------
    let incast_cfg = IncastConfig {
        servers: 40,
        burst_pkts: 48,
        rounds: 6,
        ..Default::default()
    };
    let background = SyntheticTrace::new(TraceConfig {
        duration: Nanos::from_millis(60),
        ..TraceConfig::test_small(3)
    });
    let packets = incast::merge_with_background(incast::generate(&incast_cfg), background);
    println!(
        "workload: {} packets ({} incast flows fanning into one client)\n",
        packets.len(),
        incast_cfg.servers
    );

    // A 2-leaf / 2-spine fabric with modest ports: the incast victim's
    // leaf port will congest.
    let mut network = Network::new(NetworkConfig {
        topology: Topology::LeafSpine { leaves: 2, spines: 2 },
        switch: SwitchConfig {
            ports: 8,
            port_rate_bps: 1e9,
            queue_capacity: 48,
        },
        ..Default::default()
    });

    // ------------------------------------------------------------------
    // Query 1: where is the standing queue? (Fig. 2's percentile query)
    // ------------------------------------------------------------------
    let q1 = "\
def perc ((tot, high), qin):
    if qin > K: high = high + 1
    tot = tot + 1

R1 = SELECT qid, perc groupby qid
R2 = SELECT * from R1 WHERE perc.high/perc.tot > 0.05
";
    // Query 2: who fills it? Per-flow drop counts at the network.
    let q2 = "\
R1 = SELECT COUNT GROUPBY 5tuple
R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
R3 = SELECT srcip, R2.COUNT/R1.COUNT FROM R1 JOIN R2 ON 5tuple
";
    let mut params = fig2::default_params();
    params.insert("K".to_string(), Value::Int(24)); // "deep queue" threshold

    let mut rt_queues = Runtime::new(
        compile_query(q1, &params, CompileOptions::default()).expect("compiles"),
    );
    let mut rt_flows = Runtime::new(
        compile_query(q2, &params, CompileOptions::default()).expect("compiles"),
    );

    network.run(packets.into_iter(), |record| {
        rt_queues.process_record(&record);
        rt_flows.process_record(&record);
    });
    rt_queues.finish();
    rt_flows.finish();
    println!("network: {} packets dropped\n", network.total_drops());

    // ------------------------------------------------------------------
    // Diagnosis.
    // ------------------------------------------------------------------
    let queues = rt_queues.collect();
    let hot = queues.table("R2").expect("R2 defined");
    println!("queues with persistently high occupancy (qin > 24 more than 5% of the time):");
    for row in &hot.rows {
        let qid = row.values[hot.schema.index_of("qid").unwrap()].as_i64();
        let high = row.values[hot.schema.index_of("high").unwrap()].as_i64();
        let tot = row.values[hot.schema.index_of("tot").unwrap()].as_i64();
        println!(
            "  qid {qid} (switch {}, port {}): deep on {high}/{tot} packets",
            qid / 64,
            qid % 64
        );
    }

    let flows = rt_flows.collect();
    let mut lossy = flows.table("R3").expect("R3 defined").clone();
    let ratio_col = lossy.schema.index_of("R2.COUNT/R1.COUNT").unwrap_or(
        lossy.schema.len() - 1, // last column is the ratio
    );
    lossy
        .rows
        .sort_by(|a, b| b.values[ratio_col].as_f64().total_cmp(&a.values[ratio_col].as_f64()));
    println!(
        "\ntop contributing connections by loss rate ({} lossy flows total):",
        lossy.rows.len()
    );
    for row in lossy.rows.iter().take(8) {
        let src = row.values[lossy.schema.index_of("srcip").unwrap()].as_i64() as u32;
        let loss = row.values[ratio_col].as_f64();
        println!(
            "  {} → client: {:.1}% loss",
            std::net::Ipv4Addr::from(src),
            loss * 100.0
        );
    }
    println!(
        "\nAll of this came from switch records: the endpoints never saw the \
         dropped packets at all."
    );
}
