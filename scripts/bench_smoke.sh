#!/usr/bin/env bash
# Throughput regression smoke: first re-prove the engines equivalent (a fast
# benchmark that computes the wrong answer is worthless), then run the
# pipeline benchmark in fixed-iteration mode and compare query_runtime
# records/sec against the committed baseline (BENCH_pipeline.json: the
# conservative "guard" block, or "after" when no guard exists). Fails when
# any benchmark regresses more than the allowed fraction (default 10%,
# override with BENCH_SMOKE_TOLERANCE=0.15 etc.).
#
# Usage: scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_SMOKE_TOLERANCE:-0.10}"
OUT="$(mktemp /tmp/perfq_bench_smoke.XXXXXX.json)"
trap 'rm -f "$OUT"' EXIT

echo "== equivalence gate: engines + store layout vs references =="
# A fast benchmark that computes the wrong answer is worthless: re-prove the
# batched/sharded engines equivalent to single-stream, the SoA store
# byte-identical to the reference layout, and the steady-state path
# allocation-free before timing anything.
cargo test --release -q \
    --test batch_equivalence \
    --test shard_equivalence \
    --test shard_property \
    --test store_differential \
    --test alloc_discipline

echo "== building release benches =="
cargo build --release -p perfq-bench --benches

echo "== running pipeline smoke (median of 7 iterations per bench) =="
# No filter: the guard block covers query_runtime*, end_to_end*, network_run
# and fig5_sweep, so every guarded group must actually run.
PERFQ_BENCH_SMOKE=7 PERFQ_BENCH_JSON="$OUT" \
    cargo bench -p perfq-bench --bench pipeline

python3 - "$OUT" "$TOLERANCE" <<'EOF'
import json
import sys

out_path, tolerance = sys.argv[1], float(sys.argv[2])
with open("BENCH_pipeline.json") as f:
    doc = json.load(f)
    baseline = doc.get("guard", doc["after"])
with open(out_path) as f:
    current = {r["bench"]: r["elems_per_sec"] for r in json.load(f)}

failed = False
print(f"\n{'benchmark':<48} {'baseline':>12} {'current':>12} {'ratio':>7}")
for bench, want in sorted(baseline.items()):
    got = current.get(bench)
    if got is None:
        print(f"{bench:<48} {want:>12.0f} {'MISSING':>12}")
        failed = True
        continue
    ratio = got / want
    flag = "" if ratio >= 1.0 - tolerance else "  << REGRESSION"
    if flag:
        failed = True
    print(f"{bench:<48} {want:>12.0f} {got:>12.0f} {ratio:>6.2f}x{flag}")

if failed:
    print(f"\nFAIL: throughput regressed more than {tolerance:.0%} against BENCH_pipeline.json")
    sys.exit(1)
print(f"\nOK: all benchmarks within {tolerance:.0%} of the committed baseline")
EOF
