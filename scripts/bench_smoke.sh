#!/usr/bin/env bash
# Throughput regression smoke: first re-prove the engines equivalent (a fast
# benchmark that computes the wrong answer is worthless), then run the
# pipeline benchmark in fixed-iteration mode and compare records/sec against
# the committed baseline (BENCH_pipeline.json: the conservative "guard"
# block, or "after" when no guard exists). Fails when any benchmark
# regresses more than the allowed fraction (default 10%, override with
# BENCH_SMOKE_TOLERANCE=0.15 etc.).
#
# Every number is a *median of N fixed iterations* reported as its
# p25/p50/p75 throughput quartiles. The bench box has noise phases worth
# +/-15-20%; when a measurement's interquartile spread exceeds 10% of the
# median the median itself is suspect, so a failed floor or ratio on that
# measurement is reported as SUSPECT instead of failing the run — only a
# regression backed by a clean (tight-IQR) measurement hard-FAILs. A clean
# pass is still printed with its quartiles so a lucky median can be spotted.
#
# Usage: scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_SMOKE_TOLERANCE:-0.10}"
OUT="$(mktemp /tmp/perfq_bench_smoke.XXXXXX.json)"
OUT2="$(mktemp /tmp/perfq_bench_smoke2.XXXXXX.json)"
trap 'rm -f "$OUT" "$OUT2"' EXIT

echo "== equivalence gate: engines + store layout vs references =="
# A fast benchmark that computes the wrong answer is worthless: re-prove the
# batched/sharded/multi-query engines equivalent to single-stream, the SoA
# store byte-identical to the reference layout, the area planner within
# budget, and the steady-state path allocation-free before timing anything.
cargo test --release -q \
    --test batch_equivalence \
    --test shard_equivalence \
    --test shard_property \
    --test store_differential \
    --test multi_query_equivalence \
    --test query_lifecycle \
    --test store_migration \
    --test area_plan \
    --test area_sweep \
    --test alloc_discipline \
    --test spsc_stress

echo "== doc gate: cargo doc --no-deps must be warning-free =="
# Docs are a deliverable (ARCHITECTURE.md + the crate rustdocs form the
# paper-to-code map); broken intra-doc links or missing docs on public
# items fail CI here instead of rotting silently.
RUSTDOCFLAGS="--deny warnings" cargo doc --no-deps --workspace -q

echo "== building release benches =="
cargo build --release -p perfq-bench --benches

echo "== running pipeline smoke (median of 7 iterations per bench) =="
# No filter: the guard block covers query_runtime*, end_to_end*, network_run
# and fig5_sweep, so every guarded group must actually run.
PERFQ_BENCH_SMOKE=7 PERFQ_BENCH_JSON="$OUT" \
    cargo bench -p perfq-bench --bench pipeline

echo "== re-sampling ratio-guarded groups (median of 21 iterations) =="
# The vectorized-over-record ratio guards sit near 1.0x by design on the
# fold-dominated Fig. 2 queries (both paths run the identical fold; the
# batched win is in materialize+filter, a small slice of the per-record
# cost), so 7 samples per side leave that ratio a coin flip inside a noise
# phase. Re-measure just the query_runtime* groups with 3x the samples;
# the merged rows override the smoke run's for guards and floors alike.
PERFQ_BENCH_SMOKE=21 PERFQ_BENCH_JSON="$OUT2" \
    cargo bench -p perfq-bench --bench pipeline -- query_runtime

python3 - "$OUT" "$OUT2" "$TOLERANCE" <<'EOF'
import json
import sys

out_path, out2_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open("BENCH_pipeline.json") as f:
    doc = json.load(f)
    baseline = doc.get("guard", doc["after"])
with open(out_path) as f:
    rows = json.load(f)
with open(out2_path) as f:
    resampled = json.load(f)
by_bench = {r["bench"]: r for r in rows}
by_bench.update({r["bench"]: r for r in resampled})
rows = list(by_bench.values())
current = {r["bench"]: r["elems_per_sec"] for r in rows}

# Interquartile spread of each measurement, as a fraction of its median.
# Above this width the median itself is suspect: a verdict built on it is
# annotated, and a FAILED verdict is demoted to SUSPECT (the box's noise
# phases produce 30%+ spreads that would otherwise fail healthy code).
NOISY = 0.10
spread = {
    r["bench"]: (r["p75_ns"] - r["p25_ns"]) / r["ns_per_iter"]
    for r in rows
    if r.get("p75_ns") and r["ns_per_iter"] > 0
}
# Throughput quartiles: p25 throughput comes from the p75 (slow) latency
# quartile and vice versa.
quartiles = {
    r["bench"]: (
        r["elems_per_sec"] * r["ns_per_iter"] / r["p75_ns"],
        r["elems_per_sec"],
        r["elems_per_sec"] * r["ns_per_iter"] / r["p25_ns"],
    )
    for r in rows
    if r.get("p75_ns") and r.get("p25_ns") and r["ns_per_iter"] > 0
}

failed = False
def M(v):
    return f"{v / 1e6:.2f}"

print(f"\n{'benchmark':<52} {'baseline':>9} {'p25':>7} {'p50':>7} {'p75':>7} {'ratio':>7}   (Melems/s)")
for bench, want in sorted(baseline.items()):
    got = current.get(bench)
    if got is None:
        print(f"{bench:<52} {M(want):>9} {'MISSING':>23}")
        failed = True
        continue
    ratio = got / want
    iqr = spread.get(bench, 0.0)
    p25, p50, p75 = quartiles.get(bench, (got, got, got))
    noisy = iqr > NOISY
    flag = ""
    if ratio < 1.0 - tolerance:
        # Only a clean measurement may hard-fail the run; a wide-IQR median
        # is as likely a noise phase as a regression, so flag it for a
        # human re-roll instead.
        if noisy:
            flag = "  << SUSPECT (noisy)"
        else:
            flag = "  << REGRESSION"
            failed = True
    elif noisy:
        flag = "  (NOISY)"
    print(
        f"{bench:<52} {M(want):>9} {M(p25):>7} {M(p50):>7} {M(p75):>7} {ratio:>6.2f}x{flag}"
    )

def guard_ratio(num, den, floor):
    a, b = current.get(num), current.get(den)
    if a is None or b is None:
        missing = " and ".join(n for n, v in ((num, a), (den, b)) if v is None)
        print(f"ratio {num} / {den}: MISSING ({missing})")
        return False
    ratio = a / b
    # Same tolerance semantics as the absolute floors above: the committed
    # floor states the expected relationship, the tolerance absorbs the
    # box's phase noise. Matters most for the vectorized-over-record
    # guards, whose floor of 1.0 sits on top of the measured distribution
    # (fold-dominated queries run the identical fold on both paths).
    ok = ratio >= floor * (1.0 - tolerance)
    noisy = max(spread.get(num, 0.0), spread.get(den, 0.0)) > NOISY
    if ok:
        flag = "  (NOISY)" if noisy else ""
    elif noisy:
        # Either side of the ratio being a wide-IQR median makes the ratio
        # itself suspect — annotate, don't fail (same rule as the floors).
        flag, ok = "  << SUSPECT (noisy)", True
    else:
        flag = "  << REGRESSION"
    print(f"ratio {num} / {den}: {ratio:.2f}x (floor {floor:.2f}x){flag}")
    return ok

# Relative wins must hold as RATIOS within this run (same machine-noise
# phase for both sides), not just via absolute floors. Keys are
# "<numerator bench> over <denominator bench>" with full group names —
# this covers the PR 4 shared-ingest ratio, the PR 5 cross-query
# execution-sharing ratios (shared vs sequential AND shared vs ingest-only),
# and the PR 6 vectorized-over-record floors (batched must never lose to
# record-at-a-time on any Fig. 2 query; those sides come from the 21-sample
# re-measure above).
ratio_guards = doc.get("ratio_guards", {})
if ratio_guards:
    print()
for key, floor in ratio_guards.items():
    num, den = key.split(" over ")
    if not guard_ratio(num, den, floor):
        failed = True

if failed:
    print(f"\nFAIL: a throughput floor (tolerance {tolerance:.0%}) or ratio guard "
          "failed against BENCH_pipeline.json — see the flagged lines above")
    sys.exit(1)
print(f"\nOK: all benchmarks within {tolerance:.0%} of the committed baseline")
EOF
