#!/usr/bin/env bash
# Throughput regression smoke: first re-prove the engines equivalent (a fast
# benchmark that computes the wrong answer is worthless), then run the
# pipeline benchmark in fixed-iteration mode and compare query_runtime
# records/sec against the committed baseline (BENCH_pipeline.json: the
# conservative "guard" block, or "after" when no guard exists). Fails when
# any benchmark regresses more than the allowed fraction (default 10%,
# override with BENCH_SMOKE_TOLERANCE=0.15 etc.).
#
# Usage: scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_SMOKE_TOLERANCE:-0.10}"
OUT="$(mktemp /tmp/perfq_bench_smoke.XXXXXX.json)"
trap 'rm -f "$OUT"' EXIT

echo "== equivalence gate: engines + store layout vs references =="
# A fast benchmark that computes the wrong answer is worthless: re-prove the
# batched/sharded/multi-query engines equivalent to single-stream, the SoA
# store byte-identical to the reference layout, the area planner within
# budget, and the steady-state path allocation-free before timing anything.
cargo test --release -q \
    --test batch_equivalence \
    --test shard_equivalence \
    --test shard_property \
    --test store_differential \
    --test multi_query_equivalence \
    --test area_plan \
    --test area_sweep \
    --test alloc_discipline

echo "== doc gate: cargo doc --no-deps must be warning-free =="
# Docs are a deliverable (ARCHITECTURE.md + the crate rustdocs form the
# paper-to-code map); broken intra-doc links or missing docs on public
# items fail CI here instead of rotting silently.
RUSTDOCFLAGS="--deny warnings" cargo doc --no-deps --workspace -q

echo "== building release benches =="
cargo build --release -p perfq-bench --benches

echo "== running pipeline smoke (median of 7 iterations per bench) =="
# No filter: the guard block covers query_runtime*, end_to_end*, network_run
# and fig5_sweep, so every guarded group must actually run.
PERFQ_BENCH_SMOKE=7 PERFQ_BENCH_JSON="$OUT" \
    cargo bench -p perfq-bench --bench pipeline

python3 - "$OUT" "$TOLERANCE" <<'EOF'
import json
import sys

out_path, tolerance = sys.argv[1], float(sys.argv[2])
with open("BENCH_pipeline.json") as f:
    doc = json.load(f)
    baseline = doc.get("guard", doc["after"])
with open(out_path) as f:
    current = {r["bench"]: r["elems_per_sec"] for r in json.load(f)}

failed = False
print(f"\n{'benchmark':<48} {'baseline':>12} {'current':>12} {'ratio':>7}")
for bench, want in sorted(baseline.items()):
    got = current.get(bench)
    if got is None:
        print(f"{bench:<48} {want:>12.0f} {'MISSING':>12}")
        failed = True
        continue
    ratio = got / want
    flag = "" if ratio >= 1.0 - tolerance else "  << REGRESSION"
    if flag:
        failed = True
    print(f"{bench:<48} {want:>12.0f} {got:>12.0f} {ratio:>6.2f}x{flag}")

def guard_ratio(num, den, floor):
    a, b = current.get(num), current.get(den)
    if a is None or b is None:
        missing = " and ".join(n for n, v in ((num, a), (den, b)) if v is None)
        print(f"ratio {num} / {den}: MISSING ({missing})")
        return False
    ratio = a / b
    ok = ratio >= floor
    print(f"ratio {num} / {den}: {ratio:.2f}x (floor {floor:.2f}x)"
          + ("" if ok else "  << REGRESSION"))
    return ok

# The multi-query sharing wins must hold as RATIOS within this run (same
# machine-noise phase for both sides), not just via absolute floors. Keys
# are "<numerator bench> over <denominator bench>" with full group names —
# this covers both the PR 4 shared-ingest ratio and the PR 5 cross-query
# execution-sharing ratios (shared vs sequential AND shared vs ingest-only).
ratio_guards = doc.get("ratio_guards", {})
if ratio_guards:
    print()
for key, floor in ratio_guards.items():
    num, den = key.split(" over ")
    if not guard_ratio(num, den, floor):
        failed = True

if failed:
    print(f"\nFAIL: a throughput floor (tolerance {tolerance:.0%}) or ratio guard "
          "failed against BENCH_pipeline.json — see the flagged lines above")
    sys.exit(1)
print(f"\nOK: all benchmarks within {tolerance:.0%} of the committed baseline")
EOF
