#!/usr/bin/env bash
# Throughput regression smoke: first re-prove the engines equivalent (a fast
# benchmark that computes the wrong answer is worthless), then run the
# pipeline benchmark in fixed-iteration mode and compare records/sec against
# the committed baseline (BENCH_pipeline.json: the conservative "guard"
# block, or "after" when no guard exists). Fails when any benchmark
# regresses more than the allowed fraction (default 10%, override with
# BENCH_SMOKE_TOLERANCE=0.15 etc.).
#
# Every number is a *median of N fixed iterations* reported PASTRAMI-style
# as its p5/p50/p95 throughput percentiles (near-best / median / near-worst
# tail); floors and ratios are judged on the median only. The bench box has
# noise phases worth +/-15-20%; when a measurement's interquartile spread
# (p25..p75, still the noise yardstick — the p5/p95 tails are too volatile
# to gate on) exceeds 10% of the median the median itself is suspect, so a
# failed floor or ratio on that measurement is reported as SUSPECT instead
# of failing the run outright —
# the suspect groups are then re-sampled ONCE at 3x the iterations and the
# verdict re-checked strictly: a miss that survives the re-sample is a real
# regression and FAILs; one that evaporates was a noise phase. A clean pass
# is still printed with its quartiles so a lucky median can be spotted.
#
# Usage: scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_SMOKE_TOLERANCE:-0.10}"
OUT="$(mktemp /tmp/perfq_bench_smoke.XXXXXX.json)"
OUT2="$(mktemp /tmp/perfq_bench_smoke2.XXXXXX.json)"
CHECK="$(mktemp /tmp/perfq_bench_check.XXXXXX.py)"
SUSPECTS="$(mktemp /tmp/perfq_bench_suspects.XXXXXX)"
RES_DIR="$(mktemp -d /tmp/perfq_bench_resample.XXXXXX)"
trap 'rm -rf "$OUT" "$OUT2" "$CHECK" "$SUSPECTS" "$RES_DIR"' EXIT

echo "== equivalence gate: engines + store layout vs references =="
# A fast benchmark that computes the wrong answer is worthless: re-prove the
# batched/sharded/multi-query engines equivalent to single-stream, the
# incremental read path exact and non-perturbing, the SoA store
# byte-identical to the reference layout, the area planner within budget,
# the steady-state path allocation-free, and the durable tier
# crash-equivalent (recovered state ≡ a never-crashed durable run at every
# I/O boundary, WAL corruption cut at frame granularity) before timing
# anything.
cargo test --release -q \
    --test batch_equivalence \
    --test shard_equivalence \
    --test shard_property \
    --test store_differential \
    --test multi_query_equivalence \
    --test query_lifecycle \
    --test store_migration \
    --test poll_equivalence \
    --test area_plan \
    --test area_sweep \
    --test alloc_discipline \
    --test spsc_stress \
    --test durability_crash \
    --test durability_property

echo "== doc gate: cargo doc --no-deps must be warning-free =="
# Docs are a deliverable (ARCHITECTURE.md + the crate rustdocs form the
# paper-to-code map); broken intra-doc links or missing docs on public
# items fail CI here instead of rotting silently.
RUSTDOCFLAGS="--deny warnings" cargo doc --no-deps --workspace -q

echo "== building release benches =="
cargo build --release -p perfq-bench --benches

echo "== running pipeline smoke (median of 7 iterations per bench) =="
# No filter: the guard block covers query_runtime*, end_to_end*, network_run
# and fig5_sweep, so every guarded group must actually run.
PERFQ_BENCH_SMOKE=7 PERFQ_BENCH_JSON="$OUT" \
    cargo bench -p perfq-bench --bench pipeline

echo "== re-sampling ratio-guarded groups (median of 21 iterations) =="
# The vectorized-over-record ratio guards sit near 1.0x by design on the
# fold-dominated Fig. 2 queries (both paths run the identical fold; the
# batched win is in materialize+filter, a small slice of the per-record
# cost), so 7 samples per side leave that ratio a coin flip inside a noise
# phase. Re-measure just the query_runtime* groups with 3x the samples;
# the merged rows override the smoke run's for guards and floors alike.
PERFQ_BENCH_SMOKE=21 PERFQ_BENCH_JSON="$OUT2" \
    cargo bench -p perfq-bench --bench pipeline -- query_runtime

# The checker runs twice — once over the smoke data (SUSPECT verdicts
# allowed, suspect group names written to a file), and, when the first
# pass flagged anything, once more in strict mode over the merged
# re-sampled data (a miss that survives the re-roll hard-FAILs).
cat > "$CHECK" <<'EOF'
import json
import sys

tolerance = float(sys.argv[1])
suspects_path = sys.argv[2]
strict = sys.argv[3] == "strict"
with open("BENCH_pipeline.json") as f:
    doc = json.load(f)
    baseline = doc.get("guard", doc["after"])
rows = {}
for path in sys.argv[4:]:
    with open(path) as f:
        rows.update({r["bench"]: r for r in json.load(f)})
rows = list(rows.values())
current = {r["bench"]: r["elems_per_sec"] for r in rows}

# Interquartile spread of each measurement, as a fraction of its median.
# Above this width the median itself is suspect: a verdict built on it is
# annotated, and a FAILED verdict is demoted to SUSPECT pending the
# re-sample pass (the box's noise phases produce 30%+ spreads that would
# otherwise fail healthy code). In strict mode — the re-sample pass itself
# — a miss fails regardless of spread: it already had its second chance.
NOISY = 0.10
spread = {
    r["bench"]: (r["p75_ns"] - r["p25_ns"]) / r["ns_per_iter"]
    for r in rows
    if r.get("p75_ns") and r["ns_per_iter"] > 0
}
# PASTRAMI-style throughput percentiles: p5 throughput comes from the p95
# (slow-tail) latency and vice versa. Display only — floors judge the
# median.
percentiles = {
    r["bench"]: (
        r["elems_per_sec"] * r["ns_per_iter"] / r["p95_ns"],
        r["elems_per_sec"],
        r["elems_per_sec"] * r["ns_per_iter"] / r["p5_ns"],
    )
    for r in rows
    if r.get("p95_ns") and r.get("p5_ns") and r["ns_per_iter"] > 0
}

failed = False
suspects = []


def M(v):
    return f"{v / 1e6:.2f}"


print(f"\n{'benchmark':<52} {'baseline':>9} {'p5':>7} {'p50':>7} {'p95':>7} {'ratio':>7}   (Melems/s)")
for bench, want in sorted(baseline.items()):
    got = current.get(bench)
    if got is None:
        print(f"{bench:<52} {M(want):>9} {'MISSING':>23}")
        failed = True
        continue
    ratio = got / want
    iqr = spread.get(bench, 0.0)
    p5, p50, p95 = percentiles.get(bench, (got, got, got))
    noisy = iqr > NOISY
    flag = ""
    if ratio < 1.0 - tolerance:
        # A wide-IQR median is as likely a noise phase as a regression:
        # queue the group for one higher-iteration re-roll instead of
        # failing on it. Strict mode IS that re-roll, so there it fails.
        if noisy and not strict:
            flag = "  << SUSPECT (noisy)"
            suspects.append(bench.split("/")[0])
        else:
            flag = "  << REGRESSION"
            failed = True
    elif noisy:
        flag = "  (NOISY)"
    print(
        f"{bench:<52} {M(want):>9} {M(p5):>7} {M(p50):>7} {M(p95):>7} {ratio:>6.2f}x{flag}"
    )


def guard_ratio(num, den, floor):
    a, b = current.get(num), current.get(den)
    if a is None or b is None:
        missing = " and ".join(n for n, v in ((num, a), (den, b)) if v is None)
        print(f"ratio {num} / {den}: MISSING ({missing})")
        return False
    ratio = a / b
    # Same tolerance semantics as the absolute floors above: the committed
    # floor states the expected relationship, the tolerance absorbs the
    # box's phase noise. Matters most for the vectorized-over-record
    # guards, whose floor of 1.0 sits on top of the measured distribution
    # (fold-dominated queries run the identical fold on both paths).
    ok = ratio >= floor * (1.0 - tolerance)
    noisy = max(spread.get(num, 0.0), spread.get(den, 0.0)) > NOISY
    if ok:
        flag = "  (NOISY)" if noisy else ""
    elif noisy and not strict:
        # Either side of the ratio being a wide-IQR median makes the ratio
        # itself suspect — re-sample both sides' groups and re-judge
        # strictly (same rule as the floors).
        flag, ok = "  << SUSPECT (noisy)", True
        suspects.extend([num.split("/")[0], den.split("/")[0]])
    else:
        flag = "  << REGRESSION"
    print(f"ratio {num} / {den}: {ratio:.2f}x (floor {floor:.2f}x){flag}")
    return ok


# Relative wins must hold as RATIOS within this run (same machine-noise
# phase for both sides), not just via absolute floors. Keys are
# "<numerator bench> over <denominator bench>" with full group names —
# this covers the PR 4 shared-ingest ratio, the PR 5 cross-query
# execution-sharing ratios (shared vs sequential AND shared vs ingest-only),
# the PR 6 vectorized-over-record floors (batched must never lose to
# record-at-a-time on any Fig. 2 query; those sides come from the 21-sample
# re-measure above), the PR 9 polled-over-never-polled floor, and the PR 10
# wal_on-over-wal_off floor (the durability tax may not silently grow).
ratio_guards = doc.get("ratio_guards", {})
if ratio_guards:
    print()
for key, floor in ratio_guards.items():
    num, den = key.split(" over ")
    if not guard_ratio(num, den, floor):
        failed = True

with open(suspects_path, "w") as f:
    f.write("".join(f"{g}\n" for g in sorted(set(suspects))))

if failed:
    verdict = ("the re-sampled measurement still misses it" if strict
               else "see the flagged lines above")
    print(f"\nFAIL: a throughput floor (tolerance {tolerance:.0%}) or ratio guard "
          f"failed against BENCH_pipeline.json — {verdict}")
    sys.exit(1)
if suspects:
    print(f"\nSUSPECT: {len(set(suspects))} noisy group(s) missed a floor or "
          "ratio — re-sampling before judging")
    sys.exit(0)
print(f"\nOK: all benchmarks within {tolerance:.0%} of the committed baseline")
EOF

python3 "$CHECK" "$TOLERANCE" "$SUSPECTS" first "$OUT" "$OUT2"

if [ -s "$SUSPECTS" ]; then
    echo
    echo "== re-sampling SUSPECT groups (median of 21 iterations) =="
    # One re-roll, three times the samples: a noise phase evaporates, a
    # real regression reproduces and now hard-FAILs (strict mode).
    RESAMPLED=()
    i=0
    while IFS= read -r group; do
        i=$((i + 1))
        OUT3="$RES_DIR/$i.json"
        RESAMPLED+=("$OUT3")
        PERFQ_BENCH_SMOKE=21 PERFQ_BENCH_JSON="$OUT3" \
            cargo bench -p perfq-bench --bench pipeline -- "$group"
    done < "$SUSPECTS"
    python3 "$CHECK" "$TOLERANCE" /dev/null strict "$OUT" "$OUT2" "${RESAMPLED[@]}"
fi
